//! The stateful response policy engine: circuit breakers, graded
//! degradation tiers and service-availability accounting.
//!
//! The [`crate::manager::ResponseManager`] executes countermeasures; this
//! module decides *which* countermeasures are still worth executing and
//! *how much* service the platform should keep offering while under
//! sustained attack. Three mechanisms (see `RESPONSE.md` for the operator
//! view):
//!
//! * **Per-resource circuit breakers** ([`CircuitBreaker`]) — repeated
//!   incidents against one resource trip that resource's breaker
//!   (closed → open); while open, *global* countermeasures for that
//!   resource (reboot, rollback, golden recovery, degrade requests) are
//!   suppressed so one flapping resource cannot keep taking the whole
//!   platform down. Cooldowns run on the deterministic sim clock:
//!   open → half-open when the cooldown expires, half-open → closed after
//!   a clean probe window, half-open → open on the next fault.
//! * **Degradation tiers** ([`cres_ssm::DegradationTier`]) — incident
//!   pressure moves the platform one step at a time up the
//!   `Full → ShedNonCritical → CriticalOnly → SafeHalt` ladder; each tier
//!   has a defined task/network/actuator posture (applied by
//!   [`crate::manager::ResponseManager::apply_tier`]).
//! * **Hysteresis** — tiers recover one step at a time: a step down
//!   requires both a quiet holdoff (`exit_quiet_ticks` incident-free
//!   policy ticks) *and* pressure at or below the tier's exit threshold,
//!   which sits strictly below its entry threshold. An alternating
//!   incident/quiet signal therefore never flaps the tier.
//!
//! Every decision is returned as a [`PolicyDecision`] (for evidence/console
//! wiring by the platform) and recorded as a `policy` stage span through
//! the [`StageSink`] passed in, using the [`cres_sim::policy_code`]
//! vocabulary.

use cres_sim::{policy_code, SimDuration, SimTime, Stage, StageSink};
use cres_soc::addr::MasterId;
use cres_soc::task::TaskId;
use cres_ssm::{DegradationTier, ResponseAction};
use serde::Serialize;
use std::fmt;

/// Configuration for the response policy engine.
///
/// `Copy` so it can ride inside a platform configuration; `enabled: false`
/// (the default) keeps the engine entirely out of the platform — reports
/// and behaviour are byte-identical to builds without a policy engine.
#[derive(Debug, Clone, Copy)]
pub struct PolicyConfig {
    /// Arm the policy engine. Default `false`.
    pub enabled: bool,
    /// Consecutive faults on one resource that trip its breaker.
    pub breaker_trip_threshold: u32,
    /// Open-breaker cooldown before the half-open probe window, and the
    /// length of the clean probe window required to close again.
    pub breaker_cooldown: SimDuration,
    /// Pressure at which the tier rises `Full → ShedNonCritical`.
    pub shed_enter: u32,
    /// Pressure at which the tier rises `ShedNonCritical → CriticalOnly`.
    pub critical_enter: u32,
    /// Pressure at which the tier rises `CriticalOnly → SafeHalt`.
    pub halt_enter: u32,
    /// Incident-free policy ticks required before any step down.
    pub exit_quiet_ticks: u32,
    /// Pressure drained per incident-free policy tick.
    pub pressure_decay: u32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            enabled: false,
            breaker_trip_threshold: 3,
            breaker_cooldown: SimDuration::cycles(150_000),
            shed_enter: 3,
            critical_enter: 9,
            halt_enter: 18,
            exit_quiet_ticks: 4,
            pressure_decay: 1,
        }
    }
}

impl PolicyConfig {
    /// A configuration with the engine armed and default thresholds.
    pub fn enabled() -> Self {
        PolicyConfig {
            enabled: true,
            ..PolicyConfig::default()
        }
    }

    /// Pressure required to *enter* `tier` (raise into it from below).
    /// `Full` is the resting state and needs none.
    pub fn enter_threshold(&self, tier: DegradationTier) -> u32 {
        match tier {
            DegradationTier::Full => 0,
            DegradationTier::ShedNonCritical => self.shed_enter,
            DegradationTier::CriticalOnly => self.critical_enter,
            DegradationTier::SafeHalt => self.halt_enter,
        }
    }

    /// Pressure at or below which the platform may *leave* `tier` (step
    /// down out of it). Strictly below the entry threshold — this gap is
    /// the hysteresis band.
    pub fn exit_threshold(&self, tier: DegradationTier) -> u32 {
        self.enter_threshold(tier) / 2
    }
}

/// The resource a circuit breaker protects, keyed from the incident
/// subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum BreakerKey {
    /// A bus master (interned by its id).
    Master(MasterId),
    /// A software task.
    Task(TaskId),
    /// The network interface.
    Network,
    /// A physical sensor by index.
    Sensor(usize),
    /// The platform as a whole (hangs, environment, firmware).
    Platform,
}

impl fmt::Display for BreakerKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerKey::Master(m) => write!(f, "master:{m}"),
            BreakerKey::Task(t) => write!(f, "task:{t}"),
            BreakerKey::Network => write!(f, "network"),
            BreakerKey::Sensor(i) => write!(f, "sensor:{i}"),
            BreakerKey::Platform => write!(f, "platform"),
        }
    }
}

/// Circuit-breaker state, classic three-state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Normal: faults are counted, countermeasures flow.
    Closed,
    /// Tripped: global countermeasures for this resource are suppressed
    /// until the cooldown expires.
    Open,
    /// Probing: the cooldown expired; one clean window closes the breaker,
    /// one more fault re-opens it.
    HalfOpen,
}

/// One per-resource breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Consecutive faults since the last close.
    faults: u32,
    /// When the breaker last entered `Open`.
    opened_at: SimTime,
    /// When the breaker entered `HalfOpen`.
    half_open_at: SimTime,
}

impl CircuitBreaker {
    fn new() -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            faults: 0,
            opened_at: SimTime::ZERO,
            half_open_at: SimTime::ZERO,
        }
    }

    /// Current state (after any lazily-applied cooldown transition).
    pub fn state(&self) -> BreakerState {
        self.state
    }
}

/// One decision taken by the policy engine, for the platform to chain as
/// evidence and echo to the console.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum PolicyDecision {
    /// The tier was raised one step.
    TierRaised {
        /// Posture before.
        from: DegradationTier,
        /// Posture after (one step tighter).
        to: DegradationTier,
    },
    /// The tier was lowered one step after the hysteresis holdoff.
    TierLowered {
        /// Posture before.
        from: DegradationTier,
        /// Posture after (one step looser).
        to: DegradationTier,
    },
    /// A resource's breaker tripped closed → open.
    BreakerOpened {
        /// The resource.
        key: BreakerKey,
    },
    /// A breaker's cooldown expired; it is probing.
    BreakerHalfOpen {
        /// The resource.
        key: BreakerKey,
    },
    /// A breaker saw a clean probe window and reset.
    BreakerClosed {
        /// The resource.
        key: BreakerKey,
    },
    /// A global countermeasure was suppressed behind an open breaker.
    ActionSuppressed {
        /// The resource whose breaker is open.
        key: BreakerKey,
        /// The suppressed action.
        action: ResponseAction,
    },
}

impl fmt::Display for PolicyDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyDecision::TierRaised { from, to } => write!(f, "tier raised {from} -> {to}"),
            PolicyDecision::TierLowered { from, to } => write!(f, "tier lowered {from} -> {to}"),
            PolicyDecision::BreakerOpened { key } => write!(f, "breaker {key} opened"),
            PolicyDecision::BreakerHalfOpen { key } => write!(f, "breaker {key} half-open"),
            PolicyDecision::BreakerClosed { key } => write!(f, "breaker {key} closed"),
            PolicyDecision::ActionSuppressed { key, action } => {
                write!(f, "suppressed {action} (breaker {key} open)")
            }
        }
    }
}

/// Service-availability accounting plus policy-engine outcome counters,
/// carried in the run report's optional `availability_detail` block.
///
/// "Offered" counts one unit per installed task per policy tick —
/// including killed or suspended tasks, because the service they were
/// meant to provide was still owed. "Delivered" counts the subset that
/// were actually running.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AvailabilityReport {
    /// Critical task-ticks owed.
    pub critical_offered: u64,
    /// Critical task-ticks delivered (task running at the sample).
    pub critical_delivered: u64,
    /// Non-critical task-ticks owed.
    pub noncritical_offered: u64,
    /// Non-critical task-ticks delivered.
    pub noncritical_delivered: u64,
    /// Tier steps taken upward (posture tightened).
    pub tier_raises: u32,
    /// Tier steps taken downward (service restored).
    pub tier_lowers: u32,
    /// Tier in force at end of run.
    pub final_tier: DegradationTier,
    /// Tightest tier reached during the run.
    pub peak_tier: DegradationTier,
    /// Cycles spent in each tier, [`DegradationTier::ALL`] order.
    pub time_in_tier: [u64; 4],
    /// Breaker trips (closed/half-open → open).
    pub breaker_trips: u32,
    /// Breakers reset after a clean probe window (half-open → closed).
    pub breaker_resets: u32,
    /// Global countermeasures suppressed behind open breakers.
    pub actions_suppressed: u32,
}

impl AvailabilityReport {
    /// Fraction of critical task-ticks delivered (1.0 when none owed).
    pub fn critical_availability(&self) -> f64 {
        if self.critical_offered == 0 {
            1.0
        } else {
            self.critical_delivered as f64 / self.critical_offered as f64
        }
    }

    /// Fraction of non-critical task-ticks delivered (1.0 when none owed).
    pub fn noncritical_availability(&self) -> f64 {
        if self.noncritical_offered == 0 {
            1.0
        } else {
            self.noncritical_delivered as f64 / self.noncritical_offered as f64
        }
    }
}

/// The stateful response policy engine. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ResponsePolicy {
    config: PolicyConfig,
    tier: DegradationTier,
    /// Severity-weighted incident pressure (raises tiers; decays when
    /// quiet).
    pressure: u32,
    /// Incident-free policy ticks since the last incident.
    quiet_ticks: u32,
    /// Breakers in first-fault order (deterministic iteration).
    breakers: Vec<(BreakerKey, CircuitBreaker)>,
    /// Sim time of the last tier-time accounting flush.
    tier_stamp: SimTime,
    time_in_tier: [u64; 4],
    peak_tier: DegradationTier,
    tier_raises: u32,
    tier_lowers: u32,
    breaker_trips: u32,
    breaker_resets: u32,
    actions_suppressed: u32,
    critical_offered: u64,
    critical_delivered: u64,
    noncritical_offered: u64,
    noncritical_delivered: u64,
}

impl ResponsePolicy {
    /// Creates an engine at `Full` posture with zero pressure.
    pub fn new(config: PolicyConfig) -> Self {
        ResponsePolicy {
            config,
            tier: DegradationTier::Full,
            pressure: 0,
            quiet_ticks: 0,
            breakers: Vec::new(),
            tier_stamp: SimTime::ZERO,
            time_in_tier: [0; 4],
            peak_tier: DegradationTier::Full,
            tier_raises: 0,
            tier_lowers: 0,
            breaker_trips: 0,
            breaker_resets: 0,
            actions_suppressed: 0,
            critical_offered: 0,
            critical_delivered: 0,
            noncritical_offered: 0,
            noncritical_delivered: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PolicyConfig {
        &self.config
    }

    /// The current degradation tier.
    pub fn tier(&self) -> DegradationTier {
        self.tier
    }

    /// Current severity-weighted incident pressure.
    pub fn pressure(&self) -> u32 {
        self.pressure
    }

    /// Current state of `key`'s breaker (`None` until its first fault).
    pub fn breaker_state(&self, key: BreakerKey) -> Option<BreakerState> {
        self.breakers
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, b)| b.state)
    }

    fn breaker_mut(&mut self, key: BreakerKey) -> &mut CircuitBreaker {
        if let Some(index) = self.breakers.iter().position(|(k, _)| *k == key) {
            return &mut self.breakers[index].1;
        }
        self.breakers.push((key, CircuitBreaker::new()));
        &mut self.breakers.last_mut().expect("just pushed").1
    }

    /// Advances `key`'s breaker across any due cooldown boundary
    /// (open → half-open) before reading its state.
    fn settle_breaker(
        &mut self,
        key: BreakerKey,
        now: SimTime,
        sink: &mut dyn StageSink,
        decisions: &mut Vec<PolicyDecision>,
    ) {
        let cooldown = self.config.breaker_cooldown;
        let breaker = self.breaker_mut(key);
        if breaker.state == BreakerState::Open && now >= breaker.opened_at + cooldown {
            breaker.state = BreakerState::HalfOpen;
            breaker.half_open_at = breaker.opened_at + cooldown;
            sink.record_span(now, Stage::Policy, policy_code::BREAKER_HALF_OPEN, 1);
            decisions.push(PolicyDecision::BreakerHalfOpen { key });
        }
    }

    fn flush_tier_time(&mut self, now: SimTime) {
        self.time_in_tier[self.tier.index()] += now.saturating_since(self.tier_stamp).as_cycles();
        self.tier_stamp = now;
    }

    fn raise_tier(
        &mut self,
        now: SimTime,
        sink: &mut dyn StageSink,
        decisions: &mut Vec<PolicyDecision>,
    ) {
        let from = self.tier;
        let to = from.raised();
        if to == from {
            return;
        }
        self.flush_tier_time(now);
        self.tier = to;
        self.peak_tier = self.peak_tier.max(to);
        self.tier_raises += 1;
        sink.record_span(now, Stage::Policy, policy_code::TIER_RAISED, 2);
        decisions.push(PolicyDecision::TierRaised { from, to });
    }

    /// Feeds one classified incident against `key` with the given severity
    /// weight. Counts a fault on the resource's breaker (tripping it at the
    /// threshold, or re-opening a half-open probe), accumulates pressure,
    /// and raises the tier one step when pressure crosses the next entry
    /// threshold.
    pub fn on_incident(
        &mut self,
        key: BreakerKey,
        severity_weight: u32,
        now: SimTime,
        sink: &mut dyn StageSink,
    ) -> Vec<PolicyDecision> {
        let mut decisions = Vec::new();
        self.settle_breaker(key, now, sink, &mut decisions);
        let threshold = self.config.breaker_trip_threshold;
        let breaker = self.breaker_mut(key);
        breaker.faults = breaker.faults.saturating_add(1);
        let trips = match breaker.state {
            BreakerState::Closed if breaker.faults >= threshold => true,
            BreakerState::HalfOpen => true, // failed probe
            _ => false,
        };
        if trips {
            breaker.state = BreakerState::Open;
            breaker.opened_at = now;
            self.breaker_trips += 1;
            sink.record_span(now, Stage::Policy, policy_code::BREAKER_OPENED, 1);
            decisions.push(PolicyDecision::BreakerOpened { key });
        }

        self.pressure = self.pressure.saturating_add(severity_weight.max(1));
        self.quiet_ticks = 0;
        if self.tier != DegradationTier::SafeHalt
            && self.pressure >= self.config.enter_threshold(self.tier.raised())
        {
            self.raise_tier(now, sink, &mut decisions);
        }
        decisions
    }

    /// Handles a planner `EnterDegradedMode` request under policy control:
    /// instead of the legacy suspend-everything-below-critical flag, the
    /// request tightens posture one step, capped at `CriticalOnly`
    /// (`SafeHalt` is reserved for pressure-driven escalation). Suppressed
    /// while `key`'s breaker is open.
    pub fn request_degrade(
        &mut self,
        key: BreakerKey,
        now: SimTime,
        sink: &mut dyn StageSink,
    ) -> Vec<PolicyDecision> {
        let mut decisions = Vec::new();
        self.settle_breaker(key, now, sink, &mut decisions);
        if self.breaker_state(key) == Some(BreakerState::Open) {
            self.actions_suppressed += 1;
            sink.record_span(now, Stage::Policy, policy_code::ACTION_SUPPRESSED, 1);
            decisions.push(PolicyDecision::ActionSuppressed {
                key,
                action: ResponseAction::EnterDegradedMode,
            });
            return decisions;
        }
        if self.tier < DegradationTier::CriticalOnly {
            self.raise_tier(now, sink, &mut decisions);
        }
        decisions
    }

    /// Gate for one planned countermeasure against `key`'s resource.
    /// Returns `(allowed, decisions)`: targeted actions always pass;
    /// global countermeasures (reboot, rollback, golden recovery) are
    /// suppressed while the breaker is open.
    pub fn gate_action(
        &mut self,
        key: BreakerKey,
        action: ResponseAction,
        now: SimTime,
        sink: &mut dyn StageSink,
    ) -> (bool, Vec<PolicyDecision>) {
        let global = matches!(
            action,
            ResponseAction::RebootSystem
                | ResponseAction::RollbackFirmware
                | ResponseAction::GoldenRecovery
        );
        if !global {
            return (true, Vec::new());
        }
        let mut decisions = Vec::new();
        self.settle_breaker(key, now, sink, &mut decisions);
        if self.breaker_state(key) == Some(BreakerState::Open) {
            self.actions_suppressed += 1;
            sink.record_span(now, Stage::Policy, policy_code::ACTION_SUPPRESSED, 1);
            decisions.push(PolicyDecision::ActionSuppressed { key, action });
            return (false, decisions);
        }
        (true, decisions)
    }

    /// One incident-free policy tick (the platform calls this every
    /// monitor period in which no incident was classified). Drains
    /// pressure, advances breaker cooldowns, closes clean half-open
    /// probes, and — after the hysteresis holdoff — lowers the tier one
    /// step.
    pub fn quiet_tick(&mut self, now: SimTime, sink: &mut dyn StageSink) -> Vec<PolicyDecision> {
        let mut decisions = Vec::new();
        self.quiet_ticks = self.quiet_ticks.saturating_add(1);
        self.pressure = self.pressure.saturating_sub(self.config.pressure_decay);

        let keys: Vec<BreakerKey> = self.breakers.iter().map(|(k, _)| *k).collect();
        let cooldown = self.config.breaker_cooldown;
        for key in keys {
            self.settle_breaker(key, now, sink, &mut decisions);
            let breaker = self.breaker_mut(key);
            if breaker.state == BreakerState::HalfOpen && now >= breaker.half_open_at + cooldown {
                breaker.state = BreakerState::Closed;
                breaker.faults = 0;
                self.breaker_resets += 1;
                sink.record_span(now, Stage::Policy, policy_code::BREAKER_CLOSED, 1);
                decisions.push(PolicyDecision::BreakerClosed { key });
            }
        }

        if self.tier > DegradationTier::Full
            && self.quiet_ticks >= self.config.exit_quiet_ticks
            && self.pressure <= self.config.exit_threshold(self.tier)
        {
            let from = self.tier;
            let to = from.lowered();
            self.flush_tier_time(now);
            self.tier = to;
            self.tier_lowers += 1;
            // one step per holdoff: the next step down needs its own quiet
            // window, so recovery is rate-limited by construction
            self.quiet_ticks = 0;
            sink.record_span(now, Stage::Policy, policy_code::TIER_LOWERED, 2);
            decisions.push(PolicyDecision::TierLowered { from, to });
        }
        decisions
    }

    /// Accumulates one service-availability sample: how many critical /
    /// non-critical tasks were owed and how many were actually running.
    pub fn sample_service(
        &mut self,
        critical_running: u64,
        critical_total: u64,
        noncritical_running: u64,
        noncritical_total: u64,
    ) {
        self.critical_offered += critical_total;
        self.critical_delivered += critical_running;
        self.noncritical_offered += noncritical_total;
        self.noncritical_delivered += noncritical_running;
    }

    /// Flushes tier-time accounting to `end` and produces the report
    /// block.
    pub fn finish(&mut self, end: SimTime) -> AvailabilityReport {
        self.flush_tier_time(end);
        AvailabilityReport {
            critical_offered: self.critical_offered,
            critical_delivered: self.critical_delivered,
            noncritical_offered: self.noncritical_offered,
            noncritical_delivered: self.noncritical_delivered,
            tier_raises: self.tier_raises,
            tier_lowers: self.tier_lowers,
            final_tier: self.tier,
            peak_tier: self.peak_tier,
            time_in_tier: self.time_in_tier,
            breaker_trips: self.breaker_trips,
            breaker_resets: self.breaker_resets,
            actions_suppressed: self.actions_suppressed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_sim::NullSink;

    fn t(cycle: u64) -> SimTime {
        SimTime::at_cycle(cycle)
    }

    fn armed() -> ResponsePolicy {
        ResponsePolicy::new(PolicyConfig::enabled())
    }

    #[test]
    fn breaker_trips_after_threshold_and_suppresses_globals() {
        let mut p = armed();
        let mut sink = NullSink;
        let key = BreakerKey::Task(TaskId(1));
        for i in 0..2 {
            p.on_incident(key, 1, t(1_000 * (i + 1)), &mut sink);
            assert_eq!(p.breaker_state(key), Some(BreakerState::Closed));
        }
        let decisions = p.on_incident(key, 1, t(3_000), &mut sink);
        assert!(decisions
            .iter()
            .any(|d| matches!(d, PolicyDecision::BreakerOpened { .. })));
        assert_eq!(p.breaker_state(key), Some(BreakerState::Open));
        let (allowed, decisions) =
            p.gate_action(key, ResponseAction::RebootSystem, t(4_000), &mut sink);
        assert!(!allowed);
        assert!(matches!(
            decisions[0],
            PolicyDecision::ActionSuppressed { .. }
        ));
        // targeted actions still flow
        let (allowed, _) = p.gate_action(
            key,
            ResponseAction::KillTask(TaskId(1)),
            t(4_100),
            &mut sink,
        );
        assert!(allowed);
        // other resources unaffected
        let (allowed, _) = p.gate_action(
            BreakerKey::Network,
            ResponseAction::RebootSystem,
            t(4_200),
            &mut sink,
        );
        assert!(allowed);
    }

    #[test]
    fn breaker_cooldown_half_open_then_closes_clean() {
        let mut p = armed();
        let mut sink = NullSink;
        let key = BreakerKey::Network;
        for i in 0..3 {
            p.on_incident(key, 1, t(1_000 + i), &mut sink);
        }
        assert_eq!(p.breaker_state(key), Some(BreakerState::Open));
        let cooldown = p.config().breaker_cooldown.as_cycles();
        // cooldown expiry → half-open (observed lazily from a quiet tick)
        p.quiet_tick(t(1_002 + cooldown), &mut sink);
        assert_eq!(p.breaker_state(key), Some(BreakerState::HalfOpen));
        // a full clean probe window → closed, fault count reset
        let decisions = p.quiet_tick(t(1_002 + 2 * cooldown), &mut sink);
        assert!(decisions
            .iter()
            .any(|d| matches!(d, PolicyDecision::BreakerClosed { .. })));
        assert_eq!(p.breaker_state(key), Some(BreakerState::Closed));
        // after a clean close, one fault does not trip
        p.on_incident(key, 1, t(2_000 + 2 * cooldown), &mut sink);
        assert_eq!(p.breaker_state(key), Some(BreakerState::Closed));
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut p = armed();
        let mut sink = NullSink;
        let key = BreakerKey::Platform;
        for i in 0..3 {
            p.on_incident(key, 1, t(1_000 + i), &mut sink);
        }
        let cooldown = p.config().breaker_cooldown.as_cycles();
        let decisions = p.on_incident(key, 1, t(2_000 + cooldown), &mut sink);
        // settled to half-open, then the fault re-opened it
        assert!(decisions
            .iter()
            .any(|d| matches!(d, PolicyDecision::BreakerHalfOpen { .. })));
        assert!(decisions
            .iter()
            .any(|d| matches!(d, PolicyDecision::BreakerOpened { .. })));
        assert_eq!(p.breaker_state(key), Some(BreakerState::Open));
    }

    #[test]
    fn pressure_raises_tiers_one_step_at_a_time() {
        let mut p = armed();
        let mut sink = NullSink;
        let decisions = p.on_incident(BreakerKey::Platform, 3, t(1_000), &mut sink);
        assert_eq!(
            decisions,
            vec![PolicyDecision::TierRaised {
                from: DegradationTier::Full,
                to: DegradationTier::ShedNonCritical
            }]
        );
        // pressure 3 < critical_enter 9: no second raise yet
        assert_eq!(p.tier(), DegradationTier::ShedNonCritical);
        p.on_incident(BreakerKey::Platform, 3, t(2_000), &mut sink);
        assert_eq!(p.tier(), DegradationTier::ShedNonCritical);
        p.on_incident(BreakerKey::Platform, 3, t(3_000), &mut sink);
        assert_eq!(p.tier(), DegradationTier::CriticalOnly);
        for i in 0..3 {
            p.on_incident(BreakerKey::Platform, 3, t(4_000 + i), &mut sink);
        }
        assert_eq!(p.tier(), DegradationTier::SafeHalt);
        // saturates
        p.on_incident(BreakerKey::Platform, 3, t(9_000), &mut sink);
        assert_eq!(p.tier(), DegradationTier::SafeHalt);
    }

    #[test]
    fn hysteresis_requires_holdoff_and_low_pressure() {
        let mut p = armed();
        let mut sink = NullSink;
        p.on_incident(BreakerKey::Platform, 3, t(1_000), &mut sink);
        assert_eq!(p.tier(), DegradationTier::ShedNonCritical);
        // three quiet ticks: not enough holdoff (exit_quiet_ticks = 4)
        for i in 1..=3 {
            p.quiet_tick(t(1_000 + 5_000 * i), &mut sink);
            assert_eq!(p.tier(), DegradationTier::ShedNonCritical);
        }
        // fourth quiet tick: pressure has decayed to 0 <= exit threshold 1
        let decisions = p.quiet_tick(t(21_000), &mut sink);
        assert!(decisions
            .iter()
            .any(|d| matches!(d, PolicyDecision::TierLowered { .. })));
        assert_eq!(p.tier(), DegradationTier::Full);
    }

    #[test]
    fn alternating_signal_never_flaps() {
        // incident, quiet, incident, quiet … — the holdoff means the tier
        // only ever moves up, never down, so no flapping
        let mut p = armed();
        let mut sink = NullSink;
        let mut lowest_after_first_raise = DegradationTier::SafeHalt;
        let mut raised = false;
        for i in 0..40u64 {
            let now = t(5_000 * (i + 1));
            if i % 2 == 0 {
                p.on_incident(BreakerKey::Platform, 2, now, &mut sink);
            } else {
                p.quiet_tick(now, &mut sink);
            }
            if raised {
                lowest_after_first_raise = lowest_after_first_raise.min(p.tier());
            }
            raised |= p.tier() > DegradationTier::Full;
        }
        assert!(raised);
        assert!(
            lowest_after_first_raise > DegradationTier::Full,
            "tier flapped back to Full under an alternating signal"
        );
    }

    #[test]
    fn recovery_is_one_step_per_holdoff() {
        let mut p = armed();
        let mut sink = NullSink;
        for i in 0..8u64 {
            p.on_incident(BreakerKey::Platform, 3, t(1_000 + i), &mut sink);
        }
        assert_eq!(p.tier(), DegradationTier::SafeHalt);
        let mut now = 10_000;
        let mut tiers = vec![p.tier()];
        for _ in 0..40 {
            now += 5_000;
            p.quiet_tick(t(now), &mut sink);
            if *tiers.last().unwrap() != p.tier() {
                tiers.push(p.tier());
            }
        }
        assert_eq!(
            tiers,
            vec![
                DegradationTier::SafeHalt,
                DegradationTier::CriticalOnly,
                DegradationTier::ShedNonCritical,
                DegradationTier::Full
            ],
            "recovery skipped a tier"
        );
    }

    #[test]
    fn degrade_requests_cap_at_critical_only() {
        let mut p = armed();
        let mut sink = NullSink;
        let key = BreakerKey::Task(TaskId(2));
        p.request_degrade(key, t(1_000), &mut sink);
        assert_eq!(p.tier(), DegradationTier::ShedNonCritical);
        p.request_degrade(key, t(2_000), &mut sink);
        assert_eq!(p.tier(), DegradationTier::CriticalOnly);
        p.request_degrade(key, t(3_000), &mut sink);
        assert_eq!(
            p.tier(),
            DegradationTier::CriticalOnly,
            "requests must not reach SafeHalt"
        );
    }

    #[test]
    fn availability_accounting_and_report() {
        let mut p = armed();
        let mut sink = NullSink;
        p.sample_service(1, 1, 2, 2);
        p.on_incident(BreakerKey::Platform, 3, t(5_000), &mut sink);
        p.sample_service(1, 1, 0, 2);
        p.sample_service(1, 1, 0, 2);
        let report = p.finish(t(20_000));
        assert_eq!(report.critical_offered, 3);
        assert_eq!(report.critical_delivered, 3);
        assert_eq!(report.noncritical_offered, 6);
        assert_eq!(report.noncritical_delivered, 2);
        assert!((report.critical_availability() - 1.0).abs() < 1e-12);
        assert!((report.noncritical_availability() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(report.tier_raises, 1);
        assert_eq!(report.final_tier, DegradationTier::ShedNonCritical);
        assert_eq!(report.peak_tier, DegradationTier::ShedNonCritical);
        assert_eq!(report.time_in_tier[0], 5_000);
        assert_eq!(report.time_in_tier[1], 15_000);
    }

    #[test]
    fn engine_is_deterministic() {
        let drive = || {
            let mut p = armed();
            let mut sink = NullSink;
            let mut log = Vec::new();
            for i in 0..200u64 {
                let now = t(5_000 * (i + 1));
                if i % 3 == 0 {
                    log.extend(p.on_incident(BreakerKey::Task(TaskId(1)), 2, now, &mut sink));
                } else {
                    log.extend(p.quiet_tick(now, &mut sink));
                }
            }
            (log, p.finish(t(1_005_000)))
        };
        assert_eq!(drive(), drive());
    }
}
