#![deny(missing_docs)]

//! The Active Response Manager — the paper's third microarchitectural
//! characteristic.
//!
//! > "An active response manager shall be responsible for implementing
//! > response and recovery … It shall actively enforce and execute the
//! > response and recovery strategies initiated by the system security
//! > manager. … a compromised resource can be physically isolated from the
//! > system. This would allow opportunities to gracefully degrade the
//! > system functionality while maintaining critical services."
//!
//! * [`backend`] — the [`backend::RecoveryBackend`] trait through which
//!   firmware rollback / golden recovery / key zeroisation reach the boot
//!   and TEE subsystems (the platform crate wires the real one),
//! * [`manager`] — [`manager::ResponseManager`]: executes
//!   [`cres_ssm::ResponseAction`] plans against the SoC, tracks what was
//!   done for the evidence loop, and applies graceful degradation postures
//!   (suspend-and-resume of non-critical tasks, tier-driven network and
//!   actuator stances),
//! * [`policy`] — [`policy::ResponsePolicy`]: the stateful policy engine —
//!   per-resource circuit breakers, graded degradation tiers with
//!   hysteresis, and service-availability accounting. See `RESPONSE.md`
//!   at the repository root for the operator's guide.

pub mod backend;
pub mod manager;
pub mod policy;

pub use backend::{NullRecoveryBackend, RecoveryBackend};
pub use manager::{ActionOutcome, ExecutedAction, ResponseManager};
pub use policy::{
    AvailabilityReport, BreakerKey, BreakerState, CircuitBreaker, PolicyConfig, PolicyDecision,
    ResponsePolicy,
};
