#![warn(missing_docs)]

//! The Active Response Manager — the paper's third microarchitectural
//! characteristic.
//!
//! > "An active response manager shall be responsible for implementing
//! > response and recovery … It shall actively enforce and execute the
//! > response and recovery strategies initiated by the system security
//! > manager. … a compromised resource can be physically isolated from the
//! > system. This would allow opportunities to gracefully degrade the
//! > system functionality while maintaining critical services."
//!
//! * [`backend`] — the [`backend::RecoveryBackend`] trait through which
//!   firmware rollback / golden recovery / key zeroisation reach the boot
//!   and TEE subsystems (the platform crate wires the real one),
//! * [`manager`] — [`manager::ResponseManager`]: executes
//!   [`cres_ssm::ResponseAction`] plans against the SoC, tracks what was
//!   done for the evidence loop, and owns graceful degradation
//!   (suspend-and-resume of non-critical tasks).

pub mod backend;
pub mod manager;

pub use backend::{NullRecoveryBackend, RecoveryBackend};
pub use manager::{ActionOutcome, ExecutedAction, ResponseManager};
