//! The recovery backend trait: how countermeasures reach firmware and keys.
//!
//! The response manager is deliberately ignorant of the boot and TEE
//! crates' types; the platform implements [`RecoveryBackend`] over its real
//! `cres_boot::UpdateEngine` and `cres_tee::Tee`, while tests use
//! [`NullRecoveryBackend`].

/// Recovery operations the response manager can invoke.
pub trait RecoveryBackend {
    /// Rolls firmware back to the previous slot.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when rollback is impossible (e.g. no
    /// fallback slot).
    fn rollback_firmware(&mut self) -> Result<(), String>;

    /// Reflashes from the golden image.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on failure.
    fn golden_recovery(&mut self) -> Result<(), String>;

    /// Zeroises key material.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on failure.
    fn zeroize_keys(&mut self) -> Result<(), String>;
}

/// A backend that succeeds at everything while recording call counts —
/// for unit tests and configurations without firmware/key subsystems.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecoveryBackend {
    /// Number of rollback calls.
    pub rollbacks: u32,
    /// Number of golden-recovery calls.
    pub golden: u32,
    /// Number of zeroise calls.
    pub zeroized: u32,
}

impl NullRecoveryBackend {
    /// Creates a zeroed backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RecoveryBackend for NullRecoveryBackend {
    fn rollback_firmware(&mut self) -> Result<(), String> {
        self.rollbacks += 1;
        Ok(())
    }

    fn golden_recovery(&mut self) -> Result<(), String> {
        self.golden += 1;
        Ok(())
    }

    fn zeroize_keys(&mut self) -> Result<(), String> {
        self.zeroized += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_backend_counts_calls() {
        let mut b = NullRecoveryBackend::new();
        b.rollback_firmware().unwrap();
        b.zeroize_keys().unwrap();
        b.zeroize_keys().unwrap();
        assert_eq!(b.rollbacks, 1);
        assert_eq!(b.golden, 0);
        assert_eq!(b.zeroized, 2);
    }
}
