//! The assembled platform.

use crate::config::{PlatformConfig, PlatformProfile};
use crate::faultplane::FaultPlane;
use crate::provision::{provision, Provisioned};
use crate::telemetry::TelemetryRecorder;
use cres_attacks::{AttackEffect, AttackInjector, AttackStepResult, AttackTargets};
use cres_boot::chain::BootReport;
use cres_boot::{BootChain, FirmwareImage, ImageSigner, MemArbCounters, SlotStore, UpdateEngine};
use cres_crypto::rsa::RsaPublicKey;
use cres_monitor::bus_mon::AccessWindow;
use cres_monitor::io_mon::SensorEnvelope;
use cres_monitor::{
    BusPolicyMonitor, CfiMonitor, EnvMonitor, MemoryGuardMonitor, MonitorEvent, NetworkMonitor,
    ResourceMonitor, SensorMonitor, SyscallMonitor, TaintMonitor, WatchdogMonitor,
};
use cres_monitor::{Severity, Subject};
use cres_response::{BreakerKey, PolicyDecision, RecoveryBackend, ResponseManager, ResponsePolicy};
use cres_sim::{MonitorId, NullSink, SimDuration, SimTime, StageSink};
use cres_soc::addr::MasterId;
use cres_soc::periph::{Actuator, Sensor};
use cres_soc::soc::{layout, SocBuilder};
use cres_soc::task::{Criticality, Syscall, Task, TaskId, TaskState};
use cres_soc::Soc;
use cres_ssm::{
    CorrelationConfig, DegradationTier, HealthState, ResponsePlan, SsmConfig, SystemSecurityManager,
};
use cres_tee::Tee;
use std::mem;

/// A registered attack with its step cursor.
struct AttackSlot {
    injector: Box<dyn AttackInjector>,
    next_step: u32,
    achieved: u32,
}

/// The recovery backend view over the platform's firmware and key state.
struct BackendView<'a> {
    update: &'a mut UpdateEngine,
    slots: &'a mut SlotStore,
    tee: &'a mut Tee,
    sig_len: usize,
    key: &'a RsaPublicKey,
}

impl RecoveryBackend for BackendView<'_> {
    fn rollback_firmware(&mut self) -> Result<(), String> {
        let fallback = self.slots.active().other();
        if self.slots.slot(fallback).is_empty() {
            return Err("no fallback slot".into());
        }
        // Recovery-partition semantics: the fallback image must still be
        // authentic (signature), but rolling back past the ARB counter is
        // an explicit recovery decision, not an attack.
        let image = FirmwareImage::from_bytes(self.slots.slot(fallback), self.sig_len)
            .map_err(|e| format!("fallback unparsable: {e}"))?;
        image
            .verify(self.key)
            .map_err(|e| format!("fallback not authentic: {e}"))?;
        self.slots.set_active(fallback);
        Ok(())
    }

    fn golden_recovery(&mut self) -> Result<(), String> {
        self.update.recover_golden(self.slots);
        Ok(())
    }

    fn zeroize_keys(&mut self) -> Result<(), String> {
        self.tee.zeroize_keys();
        Ok(())
    }
}

/// Maps an incident subject to the circuit breaker that meters it.
/// Memory regions and the environment roll up to the platform breaker —
/// neither is a resource countermeasures can isolate on its own.
fn breaker_key(subject: Subject) -> BreakerKey {
    match subject {
        Subject::Master(m) => BreakerKey::Master(m),
        Subject::Task(t) => BreakerKey::Task(t),
        Subject::Network => BreakerKey::Network,
        Subject::Sensor(index) => BreakerKey::Sensor(index),
        Subject::Region(_) | Subject::Environment | Subject::Platform => BreakerKey::Platform,
    }
}

/// Severity → tier-pressure weight. Info and Warning are routine noise
/// (weight 1); Alert and Critical escalate the posture faster.
fn severity_weight(severity: Severity) -> u32 {
    match severity {
        Severity::Info | Severity::Warning => 1,
        Severity::Alert => 2,
        Severity::Critical => 3,
    }
}

/// The cyber-resilient embedded platform (or one of its baselines).
pub struct Platform {
    /// Configuration in force.
    pub config: PlatformConfig,
    /// The simulated SoC.
    pub soc: Soc,
    /// The trusted execution environment.
    pub tee: Tee,
    /// The boot chain.
    pub chain: BootChain,
    /// Firmware slots.
    pub slots: SlotStore,
    /// Update engine.
    pub update: UpdateEngine,
    /// Anti-rollback counters (the OTP view).
    pub arb: MemArbCounters,
    /// The system security manager.
    pub ssm: SystemSecurityManager,
    /// The active response manager.
    pub response: ResponseManager,
    /// The vendor's public verification key.
    pub vendor_public: RsaPublicKey,
    /// The image signer (factory side; experiments mint images with it).
    pub signer: ImageSigner,
    /// Boot report from initial power-on.
    pub boot_report: BootReport,
    /// Control-flow integrity monitor (fed per task step).
    pub cfi: CfiMonitor,
    /// Syscall-sequence monitor (fed per task step).
    pub syscall_mon: SyscallMonitor,
    monitors: Vec<Box<dyn ResourceMonitor>>,
    /// Interned id of each periodic monitor, index-aligned with `monitors`.
    monitor_ids: Vec<MonitorId>,
    /// Interned id of the CFI monitor.
    cfi_id: MonitorId,
    /// Interned id of the syscall monitor.
    syscall_id: MonitorId,
    /// Reusable sampling buffer: cleared, never shrunk, so the steady-state
    /// sample→ingest tick performs no heap allocation.
    event_buf: Vec<MonitorEvent>,
    attacks: Vec<AttackSlot>,
    bootloader: Vec<u8>,
    evidence_key: Vec<u8>,
    /// The pipeline telemetry recorder; `None` when
    /// [`crate::telemetry::TelemetryConfig::enabled`] is off, making every
    /// instrumentation point a single branch.
    pub telemetry: Option<TelemetryRecorder>,
    /// The pipeline fault injector; `None` when
    /// [`crate::faultplane::FaultPlaneConfig::enabled`] is off — the
    /// disabled path draws no RNG and is byte-identical to a platform
    /// without a fault plane.
    pub faultplane: Option<FaultPlane>,
    /// The stateful response policy engine; `None` when
    /// [`cres_response::PolicyConfig::enabled`] is off — disabled, every
    /// plan executes exactly as the SSM planned it and the legacy boolean
    /// degraded-mode path is used, byte-identical to pre-policy builds.
    pub policy: Option<ResponsePolicy>,
    /// Incident count at the last policy tick; an unchanged count means
    /// the tick was quiet (hysteresis holdoffs advance, pressure decays).
    policy_last_incidents: usize,
    /// Accumulated monitor sampling cost (cycles) for E8.
    pub monitor_overhead_cycles: u64,
    /// Steps completed by `Critical` tasks (service-delivery metric).
    pub critical_steps: u64,
    /// Reboots observed.
    pub reboots: u32,
}

/// Reusable state salvaged from a finished platform, fed back into
/// [`Platform::build`] so a pooled rebuild does not reallocate the big
/// steady-state buffers. Every field is *content-reset* before reuse; only
/// capacity survives, so a pooled platform is bit-identical to a fresh one.
#[derive(Default)]
struct Recycled {
    /// The previous run's event buffer (cleared, capacity kept).
    event_buf: Vec<MonitorEvent>,
    /// The previous SSM: evidence-record and intern-table storage is kept.
    ssm: Option<SystemSecurityManager>,
    /// The previous telemetry recorder, tagged with the config it was built
    /// for — reused (via [`TelemetryRecorder::reset`]) only when the new
    /// config matches, since the ring capacity is config-determined.
    telemetry: Option<(crate::telemetry::TelemetryConfig, TelemetryRecorder)>,
}

impl Platform {
    /// Builds and boots a platform.
    pub fn new(config: PlatformConfig) -> Self {
        Self::build(config, provision(&config), Recycled::default())
    }

    /// Builds and boots a platform from already-provisioned factory state.
    ///
    /// [`crate::pool::PlatformPool`] uses this to skip re-running RSA key
    /// generation for every campaign job: [`provision`] is a pure function
    /// of `(seed, rsa_bits, TEE deployment)`, so a cached clone produces a
    /// platform bit-identical to [`Platform::new`].
    pub fn from_provisioned(config: PlatformConfig, provisioned: Provisioned) -> Self {
        Self::build(config, provisioned, Recycled::default())
    }

    /// Re-provisions this platform in place for a new job, reusing the
    /// event buffer, the SSM's evidence/intern storage and (when the
    /// telemetry config matches) the telemetry recorder. Everything else is
    /// rebuilt exactly as [`Platform::from_provisioned`] would — the pooled
    /// run is bit-identical to a fresh one (pinned by proptest).
    pub fn reset(&mut self, config: PlatformConfig, provisioned: Provisioned) {
        let mut event_buf = mem::take(&mut self.event_buf);
        event_buf.clear();
        let telemetry = self.telemetry.take().map(|r| (self.config.telemetry, r));
        // Placeholder SSM (empty key, no records) so the real one can be
        // moved into the rebuild and keep its buffers.
        let ssm = mem::replace(
            &mut self.ssm,
            SystemSecurityManager::new(SsmConfig::default(), &[]),
        );
        *self = Self::build(
            config,
            provisioned,
            Recycled {
                event_buf,
                ssm: Some(ssm),
                telemetry,
            },
        );
    }

    fn build(config: PlatformConfig, provisioned: Provisioned, recycled: Recycled) -> Self {
        let Provisioned {
            vendor,
            signer,
            chain,
            slots,
            update,
            tee,
            evidence_key,
            device_root_key: _,
            bootloader,
        } = provisioned;

        let mut soc = SocBuilder::with_standard_layout(config.seed)
            .watchdog_timeout(config.watchdog_timeout)
            .sensor(Sensor::new("grid_freq", 50.0, 0.05, 100_000, 0.002))
            .sensor(Sensor::new("line_temp", 40.0, 2.0, 1_000_000, 0.1))
            .actuator(Actuator::new("breaker", 0.0, 100.0))
            .build();

        // Load firmware into simulated flash for bus-level realism.
        let app = slots.active_bytes().to_vec();
        soc.mem.write_unchecked(
            layout::BOOT_ROM.0,
            &bootloader[..bootloader.len().min(0x1_0000)],
        );
        soc.mem
            .write_unchecked(layout::FLASH_A.0, &app[..app.len().min(0x4_0000)]);
        soc.otp
            .program("root_key_fp", &vendor.public.fingerprint())
            .expect("fresh OTP");

        Self::configure_isolation(&mut soc, config.profile);

        let ssm_config = SsmConfig {
            deployment: config.ssm_deployment(),
            correlation: CorrelationConfig {
                enabled: config.correlation_enabled,
                ..Default::default()
            },
            planner: config.planner_mode(),
            evidence_enabled: config.evidence_enabled,
        };
        let mut ssm = match recycled.ssm {
            Some(mut ssm) => {
                ssm.reset(ssm_config, &evidence_key);
                ssm
            }
            None => SystemSecurityManager::new(ssm_config, &evidence_key),
        };
        let response = ResponseManager::new(config.reboot_duration);

        let monitors = Self::build_monitors(&soc, &config);
        // Intern every monitor name once, at wiring time; events carry the
        // dense ids from here on and resolve back to names only at the
        // evidence/console/report edges.
        let monitor_ids: Vec<MonitorId> = monitors
            .iter()
            .map(|m| ssm.intern_monitor(m.name()))
            .collect();
        let cfi_id = ssm.intern_monitor("cfi");
        let syscall_id = ssm.intern_monitor("syscall");
        // The fault plane targets the periodic fleet (not CFI/syscall,
        // which are fed inline by the scheduler). Heartbeat liveness
        // tracking is armed only alongside it, so fault-free platforms are
        // bit-identical to builds without a fault plane.
        let faultplane = config.faultplane.enabled.then(|| {
            ssm.init_monitor_health(monitors.len(), config.monitor_period, 3);
            FaultPlane::new(config.faultplane, config.seed, monitors.len())
        });

        // Initial measured boot.
        let sig_len = vendor.public.modulus_len();
        let bl_image = FirmwareImage::from_bytes(&bootloader, sig_len).expect("bootloader parses");
        let mut arb = MemArbCounters::new();
        let boot_report = match FirmwareImage::from_bytes(slots.active_bytes(), sig_len) {
            Ok(app_image) => chain.boot(&[&bl_image, &app_image], &mut arb),
            Err(_) => chain.boot(&[&bl_image], &mut arb),
        };

        let mut platform = Platform {
            config,
            soc,
            tee,
            chain,
            slots,
            update,
            arb,
            ssm,
            response,
            vendor_public: vendor.public.clone(),
            signer,
            boot_report,
            cfi: CfiMonitor::new(),
            syscall_mon: SyscallMonitor::new([Syscall::PrivEscalate]),
            monitors,
            monitor_ids,
            cfi_id,
            syscall_id,
            event_buf: recycled.event_buf,
            attacks: Vec::new(),
            bootloader,
            evidence_key,
            telemetry: config.telemetry.enabled.then(|| match recycled.telemetry {
                Some((prev, mut recorder)) if prev == config.telemetry => {
                    recorder.reset();
                    recorder
                }
                _ => TelemetryRecorder::new(config.telemetry),
            }),
            faultplane,
            policy: config
                .policy
                .enabled
                .then(|| ResponsePolicy::new(config.policy)),
            policy_last_incidents: 0,
            monitor_overhead_cycles: 0,
            critical_steps: 0,
            reboots: 0,
        };
        platform.log_console(
            SimTime::ZERO,
            &format!(
                "boot: {}",
                if platform.boot_report.booted() {
                    "ok"
                } else {
                    "FAILED"
                }
            ),
        );
        // The measured-boot result is the first evidence record: PCR values
        // commit to the exact boot path.
        let pcr_summary: Vec<String> = platform.boot_report.pcrs[..3]
            .iter()
            .map(|p| cres_crypto::hex::encode(&p[..8]))
            .collect();
        platform.ssm.record_note(
            SimTime::ZERO,
            "boot",
            &format!(
                "measured boot {}; pcr0..2 = {}",
                if platform.boot_report.booted() {
                    "verified"
                } else {
                    "FAILED"
                },
                pcr_summary.join(" ")
            ),
        );
        platform
    }

    /// Applies the permission-matrix topology for a profile.
    fn configure_isolation(soc: &mut Soc, profile: PlatformProfile) {
        let region = |soc: &Soc, name: &str| soc.mem.region_by_name(name).unwrap().id();
        let ssm_private = region(soc, "ssm_private");
        let tee_secure = region(soc, "tee_secure");
        match profile {
            PlatformProfile::CyberResilient => {
                // SSM-private memory: SSM only.
                for m in MasterId::ALL {
                    if m != MasterId::SSM {
                        soc.mem.revoke(m, ssm_private);
                    }
                }
                // TEE memory: secure coprocessor model — only the SSM core
                // (standing in for the secure element) touches it.
                for m in MasterId::ALL {
                    if m != MasterId::SSM {
                        soc.mem.revoke(m, tee_secure);
                    }
                }
            }
            PlatformProfile::PassiveTrust | PlatformProfile::TeeShared => {
                // Shared-resource topology: CPU0 legitimately maps the
                // secure world (TrustZone-style time sharing) — and with it
                // inherits the attack surface. SSM-private is nominally
                // protected from DMA/NIC/DEBUG but reachable from app cores
                // (there is no separate security processor).
                for m in [MasterId::DMA, MasterId::NIC, MasterId::DEBUG] {
                    soc.mem.revoke(m, ssm_private);
                }
            }
        }
    }

    fn build_monitors(soc: &Soc, config: &PlatformConfig) -> Vec<Box<dyn ResourceMonitor>> {
        let mut monitors: Vec<Box<dyn ResourceMonitor>> = vec![Box::new(WatchdogMonitor::new())];
        if !config.active_monitors() {
            return monitors;
        }
        let r = |name: &str| soc.mem.region_by_name(name).unwrap().id();
        let mut windows = Vec::new();
        // Mission policy: application cores run code from flash, use SRAM,
        // the log buffer and peripherals. Nothing else.
        for cpu in 0..4 {
            let m = MasterId::cpu(cpu);
            windows.push(AccessWindow {
                master: m,
                region: r("flash_a"),
                read: true,
                write: false,
                exec: true,
            });
            windows.push(AccessWindow {
                master: m,
                region: r("flash_b"),
                read: true,
                write: false,
                exec: true,
            });
            windows.push(AccessWindow {
                master: m,
                region: r("boot_rom"),
                read: true,
                write: false,
                exec: true,
            });
            windows.push(AccessWindow {
                master: m,
                region: r("sram"),
                read: true,
                write: true,
                exec: true,
            });
            windows.push(AccessWindow {
                master: m,
                region: r("periph"),
                read: true,
                write: true,
                exec: false,
            });
        }
        // Only the logger core writes the audit log; a wipe from any other
        // master is out-of-policy even though the MPU permits it.
        for m in [MasterId::CPU2, MasterId::SSM] {
            windows.push(AccessWindow {
                master: m,
                region: r("app_log"),
                read: true,
                write: true,
                exec: false,
            });
        }
        // SSM may touch everything (it is the observer).
        for name in [
            "boot_rom",
            "flash_a",
            "flash_b",
            "flash_gold",
            "sram",
            "app_log",
            "tee_secure",
            "periph",
            "ssm_private",
        ] {
            windows.push(AccessWindow {
                master: MasterId::SSM,
                region: r(name),
                read: true,
                write: true,
                exec: true,
            });
        }
        // DMA serves peripheral/SRAM transfers only.
        windows.push(AccessWindow {
            master: MasterId::DMA,
            region: r("sram"),
            read: true,
            write: true,
            exec: false,
        });
        windows.push(AccessWindow {
            master: MasterId::DMA,
            region: r("periph"),
            read: true,
            write: true,
            exec: false,
        });
        // NIC DMA lands packets in SRAM.
        windows.push(AccessWindow {
            master: MasterId::NIC,
            region: r("sram"),
            read: true,
            write: true,
            exec: false,
        });

        monitors.push(Box::new(BusPolicyMonitor::new(windows, true)));
        monitors.push(Box::new(MemoryGuardMonitor::new(
            vec![r("ssm_private"), r("tee_secure")],
            vec![r("flash_a"), r("flash_b")],
        )));
        monitors.push(Box::new(NetworkMonitor::new(64, 2_048)));
        monitors.push(Box::new(SensorMonitor::new(
            0,
            SensorEnvelope {
                min: 47.0,
                max: 53.0,
                max_step: 0.5,
            },
        )));
        monitors.push(Box::new(SensorMonitor::new(
            1,
            SensorEnvelope {
                min: -10.0,
                max: 90.0,
                max_step: 8.0,
            },
        )));
        monitors.push(Box::new(EnvMonitor::default()));
        monitors.push(Box::new(TaintMonitor::new(
            vec![r("tee_secure"), r("ssm_private")],
            vec![r("periph")],
            cres_sim::SimDuration::cycles(200_000),
        )));
        monitors
    }

    /// Number of deployed monitors (including CFI and syscall monitors on
    /// profiles that run them).
    pub fn monitor_count(&self) -> usize {
        self.monitors.len() + if self.config.active_monitors() { 2 } else { 0 }
    }

    /// The evidence key (for forensic verification in experiments).
    pub fn evidence_key(&self) -> &[u8] {
        &self.evidence_key
    }

    /// The bootloader image bytes.
    pub fn bootloader_bytes(&self) -> &[u8] {
        &self.bootloader
    }

    /// Adds a workload task on `core`, provisioning the CFI monitor with
    /// its edge set.
    pub fn add_task(&mut self, task: Task, core: usize) {
        self.cfi.provision(task.id(), task.program().edge_set());
        self.soc.add_task(task, core);
    }

    /// Registers an attack; returns its index for step scheduling.
    pub fn add_attack(&mut self, injector: Box<dyn AttackInjector>) -> usize {
        self.attacks.push(AttackSlot {
            injector,
            next_step: 0,
            achieved: 0,
        });
        self.attacks.len() - 1
    }

    /// Registered attack injectors (ground-truth access for scoring).
    pub fn attack(&self, idx: usize) -> &dyn AttackInjector {
        self.attacks[idx].injector.as_ref()
    }

    /// Number of registered attacks.
    pub fn attack_count(&self) -> usize {
        self.attacks.len()
    }

    /// `(steps executed, steps achieved)` for attack `idx`.
    pub fn attack_stats(&self, idx: usize) -> (u32, u32) {
        let slot = &self.attacks[idx];
        (slot.next_step, slot.achieved)
    }

    /// Executes the next step of attack `idx`. Returns `None` when the
    /// attack has no steps left, else the step result.
    pub fn attack_step(&mut self, idx: usize, now: SimTime) -> Option<AttackStepResult> {
        let expose = self.config.expose_slots_to_attacker;
        let slot = &mut self.attacks[idx];
        if slot.next_step >= slot.injector.steps() {
            return None;
        }
        let step = slot.next_step;
        slot.next_step += 1;
        let mut targets = AttackTargets {
            soc: &mut self.soc,
            slots: if expose { Some(&mut self.slots) } else { None },
        };
        let result = slot.injector.inject_step(step, now, &mut targets);
        if result.achieved {
            slot.achieved += 1;
        }
        for effect in &result.effects {
            match effect {
                AttackEffect::SyscallsEmitted(task, calls) => {
                    self.syscall_mon.report_syscalls(now, *task, calls);
                }
            }
        }
        Some(result)
    }

    /// Steps a task, routing its telemetry into the CFI and syscall
    /// monitors and kicking the watchdog for critical tasks. Returns the
    /// delay until the task should step again, or `None` when it cannot run.
    pub fn step_task_and_observe(&mut self, id: TaskId, now: SimTime) -> Option<SimDuration> {
        let out = self.soc.step_task(id, now)?;
        if self.config.active_monitors() {
            self.cfi.report_edge(now, id, out.edge);
            self.syscall_mon.report_syscalls(now, id, &out.syscalls);
        }
        if let Some(task) = self.soc.task(id) {
            if task.criticality() == Criticality::Critical {
                self.soc.watchdog.kick(now);
                self.critical_steps += 1;
            }
        }
        Some(out.next_delay)
    }

    /// Samples every monitor, returning the collected events and charging
    /// the overhead account.
    ///
    /// When the fault plane is armed this is the faulty interconnect:
    /// crashed monitors are skipped permanently, stalled monitors skip the
    /// round (neither produces a heartbeat), the batch is routed through
    /// [`FaultPlane::filter_events`] (loss/retry, delay, reorder,
    /// corruption — due delayed events from earlier batches are delivered
    /// first), and the SSM's heartbeat liveness sweep runs so a dead
    /// monitor is quarantined instead of silently trusted.
    pub fn sample_monitors(&mut self, now: SimTime) -> Vec<MonitorEvent> {
        let mut events = Vec::new();
        self.sample_monitors_into(now, &mut events);
        events
    }

    /// [`Platform::sample_monitors`] into the platform's reusable event
    /// buffer — the steady-state path. Returns the number of events
    /// collected; feed them onward with [`Platform::ingest_sampled`].
    pub fn sample_monitors_buffered(&mut self, now: SimTime) -> usize {
        let mut events = mem::take(&mut self.event_buf);
        events.clear();
        self.sample_monitors_into(now, &mut events);
        let collected = events.len();
        self.event_buf = events;
        collected
    }

    fn sample_monitors_into(&mut self, now: SimTime, events: &mut Vec<MonitorEvent>) {
        let mut null = NullSink;
        let sink: &mut dyn StageSink = match self.telemetry.as_mut() {
            Some(recorder) => recorder,
            None => &mut null,
        };
        for (index, m) in self.monitors.iter_mut().enumerate() {
            if let Some(fp) = self.faultplane.as_mut() {
                if fp.is_crashed(index, now) {
                    continue; // dead: no sample, no heartbeat
                }
                if fp.monitor_stalls(now, sink) {
                    continue; // stalled: skips the round and its heartbeat
                }
            }
            self.monitor_overhead_cycles += m.sample_cost();
            let start = events.len();
            m.sample_into_traced(&mut self.soc, now, events, sink);
            for e in &mut events[start..] {
                e.monitor = self.monitor_ids[index];
            }
            self.ssm.monitor_heartbeat(index, now);
        }
        if self.config.active_monitors() {
            self.monitor_overhead_cycles += self.cfi.sample_cost() + self.syscall_mon.sample_cost();
            let start = events.len();
            self.cfi
                .sample_into_traced(&mut self.soc, now, events, sink);
            for e in &mut events[start..] {
                e.monitor = self.cfi_id;
            }
            let start = events.len();
            self.syscall_mon
                .sample_into_traced(&mut self.soc, now, events, sink);
            for e in &mut events[start..] {
                e.monitor = self.syscall_id;
            }
        }
        if let Some(fp) = self.faultplane.as_mut() {
            fp.filter_events(now, events, sink);
            let quarantined = self.ssm.check_monitor_health(now, sink);
            for index in quarantined {
                self.soc.uart.write_line(format!(
                    "[{now}] ssm: monitor #{index} heartbeat lost; quarantined, sensing degraded"
                ));
            }
        }
    }

    /// Feeds events to the SSM and executes any resulting plans. Returns
    /// the plans executed (the runner schedules recovery follow-ups).
    pub fn ingest_and_respond(
        &mut self,
        now: SimTime,
        events: Vec<MonitorEvent>,
    ) -> Vec<ResponsePlan> {
        self.ingest_events(now, &events)
    }

    /// Ingests the events collected by [`Platform::sample_monitors_buffered`]
    /// without giving up the reusable buffer. The steady-state no-incident
    /// path through here performs no heap allocation.
    pub fn ingest_sampled(&mut self, now: SimTime) -> Vec<ResponsePlan> {
        let events = mem::take(&mut self.event_buf);
        let plans = self.ingest_events(now, &events);
        self.event_buf = events;
        plans
    }

    fn ingest_events(&mut self, now: SimTime, events: &[MonitorEvent]) -> Vec<ResponsePlan> {
        for e in events {
            // The baseline's console audit log (wipeable); the SSM's chain
            // is written inside ingest().
            if e.severity >= cres_monitor::Severity::Warning {
                self.soc.uart.write_line(format!(
                    "[{}] {} {}: {}",
                    e.at,
                    self.ssm.monitor_name(e.monitor),
                    e.subject,
                    e.rendered()
                ));
            }
        }
        let plans = {
            let mut null = NullSink;
            let sink: &mut dyn StageSink = match self.telemetry.as_mut() {
                Some(recorder) => recorder,
                None => &mut null,
            };
            self.ssm.ingest_traced(now, events, sink)
        };
        if self.policy.is_none() {
            for plan in &plans {
                self.execute_plan(plan, now);
            }
            return plans;
        }
        // Under the policy engine the runner must see what actually
        // executed (a suppressed reboot must not schedule a reboot
        // recovery window), so return the gated plans.
        let mut executed = Vec::with_capacity(plans.len());
        for plan in &plans {
            let gated = self.policy_gate_plan(plan, now);
            self.execute_plan(&gated, now);
            executed.push(gated);
        }
        executed
    }

    /// Routes one plan through the response policy engine: feeds the
    /// incident to the matching circuit breaker (fault pressure), converts
    /// `EnterDegradedMode` into a one-step tier raise, and suppresses
    /// global countermeasures behind open breakers. Identity when the
    /// policy engine is off.
    fn policy_gate_plan(&mut self, plan: &ResponsePlan, now: SimTime) -> ResponsePlan {
        let Some(mut policy) = self.policy.take() else {
            return plan.clone();
        };
        let (key, weight) = self
            .ssm
            .incidents()
            .iter()
            .rev()
            .find(|incident| incident.id == plan.incident)
            .map(|incident| {
                (
                    breaker_key(incident.subject),
                    severity_weight(incident.severity),
                )
            })
            .unwrap_or((BreakerKey::Platform, 1));
        let mut kept = Vec::with_capacity(plan.actions.len());
        let decisions = {
            let mut null = NullSink;
            let sink: &mut dyn StageSink = match self.telemetry.as_mut() {
                Some(recorder) => recorder,
                None => &mut null,
            };
            let mut decisions = policy.on_incident(key, weight, now, sink);
            for &action in &plan.actions {
                if action == cres_ssm::ResponseAction::EnterDegradedMode {
                    // the tier machine owns degradation now: a degrade
                    // request raises one step (capped at CriticalOnly)
                    // instead of flipping the legacy boolean posture
                    decisions.extend(policy.request_degrade(key, now, sink));
                    continue;
                }
                let (allowed, more) = policy.gate_action(key, action, now, sink);
                decisions.extend(more);
                if allowed {
                    kept.push(action);
                }
            }
            decisions
        };
        self.policy = Some(policy);
        self.apply_policy_decisions(now, decisions);
        ResponsePlan {
            incident: plan.incident,
            actions: kept,
        }
    }

    /// Applies the side effects of policy decisions: tier changes reach
    /// the response manager's posture machinery and the SSM's evidence
    /// chain; breaker transitions are evidenced as policy notes. Every
    /// decision also lands on the console for the operator.
    fn apply_policy_decisions(&mut self, now: SimTime, decisions: Vec<PolicyDecision>) {
        for decision in decisions {
            match decision {
                PolicyDecision::TierRaised { from, to }
                | PolicyDecision::TierLowered { from, to } => {
                    self.response.apply_tier(from, to, &mut self.soc);
                    self.ssm.set_response_tier(now, from, to);
                    if to == DegradationTier::Full
                        && from > to
                        && self.ssm.health() != HealthState::Healthy
                    {
                        self.ssm.record_recovered(now);
                    }
                }
                _ => {
                    self.ssm.record_note(now, "policy", &decision.to_string());
                }
            }
            self.soc
                .uart
                .write_line(format!("[{now}] policy: {decision}"));
        }
    }

    /// One policy heartbeat: samples per-criticality service delivery and,
    /// on incident-free ticks, advances hysteresis holdoffs, decays
    /// pressure, settles breaker cooldowns, and steps the tier back toward
    /// [`DegradationTier::Full`]. Called by the runner once per monitor
    /// period; a no-op when the policy engine is off.
    pub fn policy_tick(&mut self, now: SimTime) {
        let Some(mut policy) = self.policy.take() else {
            return;
        };
        let mut critical = (0u64, 0u64);
        let mut noncritical = (0u64, 0u64);
        for id in self.soc.task_ids() {
            let Some(task) = self.soc.task(id) else {
                continue;
            };
            let class = if task.criticality() == Criticality::Critical {
                &mut critical
            } else {
                &mut noncritical
            };
            class.1 += 1;
            if task.state() == TaskState::Running {
                class.0 += 1;
            }
        }
        policy.sample_service(critical.0, critical.1, noncritical.0, noncritical.1);
        let incidents = self.ssm.incidents().len();
        let quiet = incidents == self.policy_last_incidents;
        self.policy_last_incidents = incidents;
        let decisions = if quiet {
            let mut null = NullSink;
            let sink: &mut dyn StageSink = match self.telemetry.as_mut() {
                Some(recorder) => recorder,
                None => &mut null,
            };
            policy.quiet_tick(now, sink)
        } else {
            Vec::new()
        };
        self.policy = Some(policy);
        self.apply_policy_decisions(now, decisions);
    }

    /// Executes one plan through the response manager with the real
    /// recovery backend, recording outcomes in the evidence chain.
    ///
    /// With the fault plane armed, each command first crosses the faulty
    /// SSM→backend interconnect: a dropped command (after retries) is
    /// recorded as a failed action in the forensic log and removed from the
    /// plan actually executed — including `EnterDegradedMode`, so a lost
    /// degrade command really is lost.
    pub fn execute_plan(&mut self, plan: &ResponsePlan, now: SimTime) {
        let plan = &self.drop_faulted_commands(plan, now);
        let mut backend = BackendView {
            update: &mut self.update,
            slots: &mut self.slots,
            tee: &mut self.tee,
            sig_len: self.vendor_public.modulus_len(),
            key: &self.vendor_public,
        };
        let mut null = NullSink;
        let sink: &mut dyn StageSink = match self.telemetry.as_mut() {
            Some(recorder) => recorder,
            None => &mut null,
        };
        let results =
            self.response
                .execute_plan_traced(plan, now, &mut self.soc, &mut backend, sink);
        for r in &results {
            if matches!(
                r.action,
                cres_ssm::ResponseAction::RebootSystem
                    | cres_ssm::ResponseAction::RollbackFirmware
                    | cres_ssm::ResponseAction::GoldenRecovery
            ) && r.outcome.is_success()
            {
                self.reboots += 1;
            }
            self.ssm
                .record_response(now, &r.action.to_string(), r.outcome.is_success());
            self.soc
                .uart
                .write_line(format!("[{}] response {} -> {}", now, r.action, r.outcome));
        }
        if plan
            .actions
            .contains(&cres_ssm::ResponseAction::EnterDegradedMode)
        {
            self.ssm.record_degraded(now);
        }
    }

    /// Routes a plan's commands across the faulty interconnect, returning
    /// the plan that actually reaches the backend. Without a fault plane
    /// this is the identity.
    fn drop_faulted_commands(&mut self, plan: &ResponsePlan, now: SimTime) -> ResponsePlan {
        let Some(fp) = self.faultplane.as_mut() else {
            return plan.clone();
        };
        let mut null = NullSink;
        let sink: &mut dyn StageSink = match self.telemetry.as_mut() {
            Some(recorder) => recorder,
            None => &mut null,
        };
        let mut kept = Vec::with_capacity(plan.actions.len());
        for &action in &plan.actions {
            if fp.drops_response(now, sink) {
                let record = self.response.record_dropped(action, now);
                self.ssm.record_response(now, &action.to_string(), false);
                self.soc.uart.write_line(format!(
                    "[{now}] response {} -> {}",
                    record.action, record.outcome
                ));
            } else {
                kept.push(action);
            }
        }
        ResponsePlan {
            incident: plan.incident,
            actions: kept,
        }
    }

    /// Writes a console log line (the baseline's audit channel).
    pub fn log_console(&mut self, now: SimTime, line: &str) {
        self.soc.uart.write_line(format!("[{now}] {line}"));
    }

    /// Trains the syscall monitor by running every task `rounds` steps in a
    /// sandboxed pre-deployment pass, then freezes the model.
    pub fn train_syscall_monitor(&mut self, rounds: u32) {
        let ids = self.soc.task_ids();
        for _ in 0..rounds {
            for &id in &ids {
                if let Some(out) = self.soc.step_task(id, SimTime::ZERO) {
                    self.syscall_mon
                        .report_syscalls(SimTime::ZERO, id, &out.syscalls);
                }
            }
        }
        // discard any events the training produced
        let _ = self.syscall_mon.sample(&mut self.soc, SimTime::ZERO);
        self.syscall_mon.finish_training();
        // training traffic also hit the bus tap; flush the other monitors
        let _ = self.sample_monitors(SimTime::ZERO);
        self.monitor_overhead_cycles = 0;
        self.critical_steps = 0;
        // spans from the training flush are pre-deployment noise
        if let Some(recorder) = self.telemetry.as_mut() {
            recorder.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_soc::task::control_loop_program;

    fn platform(profile: PlatformProfile) -> Platform {
        let mut p = Platform::new(PlatformConfig::new(profile, 7));
        let program = control_loop_program(layout::FLASH_A.0, layout::SRAM.0, layout::PERIPH.0);
        p.add_task(
            Task::new(TaskId(1), "relay", program, Criticality::Critical),
            0,
        );
        p.train_syscall_monitor(30);
        p
    }

    #[test]
    fn cres_platform_boots_clean() {
        let p = platform(PlatformProfile::CyberResilient);
        assert!(p.boot_report.booted());
        assert!(p.monitor_count() >= 8);
    }

    #[test]
    fn baseline_has_only_watchdog() {
        let p = platform(PlatformProfile::PassiveTrust);
        assert!(p.boot_report.booted());
        assert_eq!(p.monitor_count(), 1); // watchdog only
    }

    #[test]
    fn isolation_topology_enforced() {
        let p = platform(PlatformProfile::CyberResilient);
        // app cores cannot read SSM-private memory
        assert!(p
            .soc
            .mem
            .read(MasterId::CPU0, layout::SSM_PRIVATE.0, 4)
            .is_err());
        assert!(p
            .soc
            .mem
            .read(MasterId::SSM, layout::SSM_PRIVATE.0, 4)
            .is_ok());
        // shared profile: app core CAN reach it
        let shared = platform(PlatformProfile::TeeShared);
        assert!(shared
            .soc
            .mem
            .read(MasterId::CPU0, layout::SSM_PRIVATE.0, 4)
            .is_ok());
    }

    #[test]
    fn benign_stepping_produces_no_incidents() {
        let mut p = platform(PlatformProfile::CyberResilient);
        let mut now = SimTime::at_cycle(1);
        for _ in 0..200 {
            if let Some(delay) = p.step_task_and_observe(TaskId(1), now) {
                now += delay;
            }
        }
        let events = p.sample_monitors(now);
        let plans = p.ingest_and_respond(now, events);
        assert!(plans.is_empty(), "benign workload triggered plans");
        assert!(p.ssm.incidents().is_empty());
        assert!(p.critical_steps >= 200);
    }

    #[test]
    fn code_injection_is_detected_and_answered() {
        let mut p = platform(PlatformProfile::CyberResilient);
        // a self-edge is illegal from every block in the control loop
        let gadget = p.soc.task(TaskId(1)).unwrap().current_block();
        let idx = p.add_attack(Box::new(cres_attacks::CodeInjectionAttack::new(
            TaskId(1),
            gadget,
            1,
        )));
        let mut now = SimTime::at_cycle(1);
        p.attack_step(idx, now).unwrap();
        // victim takes the hijacked edge
        for _ in 0..3 {
            if let Some(d) = p.step_task_and_observe(TaskId(1), now) {
                now += d;
            }
        }
        let events = p.sample_monitors(now);
        assert!(!events.is_empty());
        let plans = p.ingest_and_respond(now, events);
        assert!(!plans.is_empty(), "no response to code injection");
        assert_eq!(
            p.ssm.incidents()[0].kind,
            cres_ssm::IncidentKind::CodeInjection
        );
        assert!(p.ssm.evidence().verify().is_ok());
        assert!(p.response.is_degraded());
    }

    #[test]
    fn baseline_misses_code_injection() {
        let mut p = platform(PlatformProfile::PassiveTrust);
        let gadget = p.soc.task(TaskId(1)).unwrap().current_block();
        let idx = p.add_attack(Box::new(cres_attacks::CodeInjectionAttack::new(
            TaskId(1),
            gadget,
            1,
        )));
        let mut now = SimTime::at_cycle(1);
        p.attack_step(idx, now).unwrap();
        for _ in 0..3 {
            if let Some(d) = p.step_task_and_observe(TaskId(1), now) {
                now += d;
            }
        }
        // baseline has no CFI monitor feeding the SSM — its monitor list is
        // watchdog-only, and cfi events are only collected on CRES profiles
        let events: Vec<MonitorEvent> = {
            let mut evs = Vec::new();
            for m in &mut p.monitors {
                evs.extend(m.sample(&mut p.soc, now));
            }
            evs
        };
        let plans = p.ingest_and_respond(now, events);
        assert!(plans.is_empty());
        assert!(p.ssm.incidents().is_empty());
    }

    #[test]
    fn attack_steps_are_bounded() {
        let mut p = platform(PlatformProfile::CyberResilient);
        let idx = p.add_attack(Box::new(cres_attacks::NetworkFloodAttack::new(10, 2)));
        assert!(p.attack_step(idx, SimTime::at_cycle(1)).is_some());
        assert!(p.attack_step(idx, SimTime::at_cycle(2)).is_some());
        assert!(p.attack_step(idx, SimTime::at_cycle(3)).is_none());
        assert_eq!(p.attack(idx).injection_times().len(), 2);
    }
}
