//! Always-on pipeline telemetry: cycle-accurate tracing + metrics registry.
//!
//! The paper's Active Runtime Resource Monitors exist to produce a
//! *continuous historical data stream*; this module gives the reproduction
//! the same property about **itself**. Every stage of the resilience
//! pipeline (monitor-sample → event-emit → correlate → classify → plan →
//! respond → evidence-append) reports spans through the
//! [`cres_sim::StageSink`] trait, and the platform's [`TelemetryRecorder`]
//! collects them into:
//!
//! * a fixed-capacity, no-alloc-on-hot-path [`TraceRing`] of
//!   [`TraceSpan`]s stamped with the sim cycle clock,
//! * per-stage count/cycle accumulators (plain arrays indexed by
//!   [`Stage::index`]),
//! * a [`MetricsRegistry`] of named counters, gauges and fixed-bucket
//!   histograms, populated at scoring time with detection latency,
//!   incidents per kind, ring occupancy and evidence-chain length.
//!
//! Recording charges a nominal per-span instrumentation cost
//! ([`TelemetryConfig::span_cost`] cycles, modelling a trace-macrocell
//! FIFO write) into an accounting counter — it never perturbs the
//! simulation itself, so a run with telemetry on is bit-identical to the
//! same run with telemetry off in every non-telemetry report field
//! (asserted by `e8_overhead`). Snapshots merge associatively in
//! submission order ([`TelemetrySnapshot::merge`]), which is what keeps
//! parallel campaign aggregation bit-identical to sequential
//! (`tests/campaign_determinism.rs`).
//!
//! # Example
//!
//! ```
//! use cres_platform::telemetry::{TelemetryConfig, TelemetryRecorder};
//! use cres_sim::{SimTime, Stage, StageSink};
//!
//! let mut recorder = TelemetryRecorder::new(TelemetryConfig::default());
//! recorder.record_span(SimTime::at_cycle(100), Stage::MonitorSample, 1, 2);
//! recorder.record_span(SimTime::at_cycle(100), Stage::EventEmit, 3, 1);
//!
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.spans_recorded, 2);
//! assert_eq!(snapshot.instrumentation_cycles, 2 * snapshot.span_cost);
//! assert_eq!(snapshot.stage(Stage::MonitorSample).unwrap().count, 1);
//! ```

use cres_sim::{SimTime, Stage, StageSink};
use std::collections::BTreeMap;

/// Histogram bucket upper bounds (cycles) for detection latency: one
/// bucket per sampling-period decade the E8 sweep explores, plus the
/// watchdog band.
pub const LATENCY_BUCKETS: [u64; 8] = [
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 500_000,
];

/// Telemetry layer configuration, carried on
/// [`crate::config::PlatformConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. When false the platform allocates no recorder and
    /// the instrumentation points cost one branch.
    pub enabled: bool,
    /// Trace ring capacity in spans (fixed at construction; the hot path
    /// never allocates).
    pub ring_capacity: usize,
    /// Nominal cycle cost charged per recorded span (the modelled price of
    /// one trace-FIFO write). Pure accounting — never injected into the
    /// simulation's event timing.
    pub span_cost: u64,
    /// Attach the worker's [`crate::pool::PoolStats`] to pooled run
    /// reports (`RunReport::pool`). Off by default: the pool's hit/miss
    /// counters depend on how many jobs the owning worker has already run,
    /// so the field is schedule-dependent and would break the bit-identity
    /// the campaign determinism suite pins across worker counts. Turn it
    /// on only for runs whose reports are not diffed across thread counts
    /// (e.g. pool-warmth audits).
    pub pool_stats: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            ring_capacity: 4_096,
            span_cost: 2,
            pool_stats: false,
        }
    }
}

/// One recorded span: a unit of pipeline work at a cycle instant.
///
/// `arg` is a stage-specific payload (see the [`Stage`] variant docs):
/// events produced for `monitor-sample`, severity rank for `event-emit`,
/// incident id for `classify`, action count for `plan`, success flag for
/// `respond`, chain sequence for `evidence-append`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Sim-clock instant the work was observed at.
    pub at: SimTime,
    /// Pipeline stage.
    pub stage: Stage,
    /// Stage-specific payload.
    pub arg: u32,
    /// Modelled cycle cost of the work itself.
    pub cycles: u64,
}

/// Fixed-capacity ring buffer of [`TraceSpan`]s.
///
/// Capacity is allocated once at construction; recording a span into a
/// full ring overwrites the oldest span and bumps the drop counter, so the
/// hot path is a bounds-checked array write — no allocation, no
/// reallocation.
///
/// # Example
///
/// ```
/// use cres_platform::telemetry::TraceRing;
/// use cres_sim::{SimTime, Stage};
///
/// let mut ring = TraceRing::new(2);
/// for cycle in 1..=3 {
///     ring.push(SimTime::at_cycle(cycle), Stage::Correlate, 0, 2);
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.dropped(), 1);
/// // oldest-first iteration: span @1 was evicted
/// assert_eq!(ring.iter().next().unwrap().at, SimTime::at_cycle(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRing {
    spans: Vec<TraceSpan>,
    capacity: usize,
    /// Index the next span will be written to once the ring is full.
    head: usize,
    recorded: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be non-zero");
        TraceRing {
            spans: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            recorded: 0,
        }
    }

    /// Records a span, overwriting the oldest when full.
    pub fn push(&mut self, at: SimTime, stage: Stage, arg: u32, cycles: u64) {
        let span = TraceSpan {
            at,
            stage,
            arg,
            cycles,
        };
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total spans ever recorded (retained + overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.spans.len() as u64
    }

    /// Iterates retained spans oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceSpan> {
        let (newer, older) = self.spans.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// The newest `n` spans, oldest-first.
    pub fn tail(&self, n: usize) -> Vec<TraceSpan> {
        let skip = self.len().saturating_sub(n);
        self.iter().skip(skip).copied().collect()
    }

    /// Clears the ring and its counters (used when the platform flushes
    /// pre-deployment training noise).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.head = 0;
        self.recorded = 0;
    }
}

/// A fixed-bucket histogram: counts of observations ≤ each bound, plus an
/// overflow bucket, running total and sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram over ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; last = overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observation count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, if any were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// The cumulative-bucket view (Prometheus exposition semantics): one
    /// `(upper_bound, observations ≤ bound)` pair per bound, ascending,
    /// ending with the `+Inf` bucket (`None`) whose count equals
    /// [`Histogram::total`].
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        cumulative(&self.bounds, &self.counts)
    }

    /// Adds another histogram's observations bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Shared cumulative fold for [`Histogram`] and [`HistogramSnapshot`]:
/// pairs each upper bound (then `None` = `+Inf`) with the running count.
fn cumulative(bounds: &[u64], counts: &[u64]) -> Vec<(Option<u64>, u64)> {
    let mut out = Vec::with_capacity(counts.len());
    let mut acc = 0u64;
    for (i, count) in counts.iter().enumerate() {
        acc += count;
        out.push((bounds.get(i).copied(), acc));
    }
    out
}

/// A registry of named counters, gauges and fixed-bucket histograms.
///
/// Names are sorted (BTreeMap) so every enumeration — snapshot, JSON
/// export, campaign merge — is deterministic.
///
/// # Example
///
/// ```
/// use cres_platform::telemetry::MetricsRegistry;
///
/// let mut metrics = MetricsRegistry::new();
/// metrics.counter_add("incidents.NetworkFlood", 2);
/// metrics.gauge_set("evidence_chain_len", 17.0);
/// metrics.histogram("detection_latency_cycles", &[1_000, 10_000]);
/// metrics.observe("detection_latency_cycles", 4_200);
///
/// assert_eq!(metrics.counter("incidents.NetworkFlood"), Some(2));
/// assert_eq!(metrics.gauge("evidence_chain_len"), Some(17.0));
/// let latency = metrics.histogram_get("detection_latency_cycles").unwrap();
/// assert_eq!(latency.counts(), &[0, 1, 0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(counter) = self.counters.get_mut(name) {
            *counter += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Current value of counter `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Registers histogram `name` over `bounds` if absent (idempotent —
    /// existing bounds win).
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) {
        if !self.histograms.contains_key(name) {
            self.histograms
                .insert(name.to_string(), Histogram::new(bounds));
        }
    }

    /// Records `value` into histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if the histogram was never registered — observation sites
    /// are fixed pipeline code, so an unknown name is a wiring bug.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram {name:?} not registered"))
            .observe(value);
    }

    /// Histogram `name`, if registered.
    pub fn histogram_get(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Aggregate of all spans recorded for one [`Stage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStat {
    /// The stage.
    pub stage: Stage,
    /// Spans recorded.
    pub count: u64,
    /// Summed modelled cycle cost of the work those spans describe.
    pub cycles: u64,
}

/// The platform's telemetry collector: trace ring + per-stage accumulators
/// + metrics registry, fed through [`StageSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRecorder {
    config: TelemetryConfig,
    ring: TraceRing,
    stage_counts: [u64; Stage::COUNT],
    stage_cycles: [u64; Stage::COUNT],
    instrumentation_cycles: u64,
    metrics: MetricsRegistry,
}

impl TelemetryRecorder {
    /// Creates a recorder; the detection-latency histogram is
    /// pre-registered over [`LATENCY_BUCKETS`].
    pub fn new(config: TelemetryConfig) -> Self {
        let mut metrics = MetricsRegistry::new();
        metrics.histogram("detection_latency_cycles", &LATENCY_BUCKETS);
        TelemetryRecorder {
            config,
            ring: TraceRing::new(config.ring_capacity),
            stage_counts: [0; Stage::COUNT],
            stage_cycles: [0; Stage::COUNT],
            instrumentation_cycles: 0,
            metrics,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// The trace ring (read access for dump tooling).
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// The metrics registry (scoring code adds end-of-run metrics here).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Accumulated instrumentation cost: spans recorded ×
    /// [`TelemetryConfig::span_cost`]. This is the number E8 holds under
    /// 5% of the run duration.
    pub fn instrumentation_cycles(&self) -> u64 {
        self.instrumentation_cycles
    }

    /// Clears all recorded state (pre-deployment training flush) while
    /// keeping registered histograms.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.stage_counts = [0; Stage::COUNT];
        self.stage_cycles = [0; Stage::COUNT];
        self.instrumentation_cycles = 0;
        let mut metrics = MetricsRegistry::new();
        metrics.histogram("detection_latency_cycles", &LATENCY_BUCKETS);
        self.metrics = metrics;
    }

    /// Freezes the current state into a snapshot, keeping the newest 16
    /// spans as the forensic trace tail.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let stages = Stage::ALL
            .into_iter()
            .map(|stage| StageStat {
                stage,
                count: self.stage_counts[stage.index()],
                cycles: self.stage_cycles[stage.index()],
            })
            .filter(|s| s.count > 0)
            .collect();
        TelemetrySnapshot {
            spans_recorded: self.ring.recorded(),
            spans_dropped: self.ring.dropped(),
            ring_capacity: self.ring.capacity(),
            ring_occupancy: self.ring.len(),
            span_cost: self.config.span_cost,
            instrumentation_cycles: self.instrumentation_cycles,
            stages,
            counters: self
                .metrics
                .counters()
                .map(|(k, v)| (k.into(), v))
                .collect(),
            gauges: self.metrics.gauges().map(|(k, v)| (k.into(), v)).collect(),
            histograms: self
                .metrics
                .histograms()
                .map(|(name, h)| HistogramSnapshot {
                    name: name.to_string(),
                    bounds: h.bounds().to_vec(),
                    counts: h.counts().to_vec(),
                    total: h.total(),
                    sum: h.sum(),
                })
                .collect(),
            trace_tail: self.ring.tail(16),
        }
    }
}

impl StageSink for TelemetryRecorder {
    #[inline]
    fn record_span(&mut self, at: SimTime, stage: Stage, arg: u32, cycles: u64) {
        self.ring.push(at, stage, arg, cycles);
        self.stage_counts[stage.index()] += 1;
        self.stage_cycles[stage.index()] += cycles;
        self.instrumentation_cycles += self.config.span_cost;
    }
}

/// One named histogram, frozen for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts (`bounds.len() + 1`; last = overflow).
    pub counts: Vec<u64>,
    /// Observation count.
    pub total: u64,
    /// Observation sum.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The cumulative-bucket view — see [`Histogram::cumulative_buckets`];
    /// the last (`None` = `+Inf`) entry equals `self.total`.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        cumulative(&self.bounds, &self.counts)
    }
}

/// The frozen end-of-run telemetry report carried on
/// [`crate::metrics::RunReport`] (and exported through its JSON codec —
/// see `EXPERIMENTS.md` E8 for the field-by-field schema).
///
/// # JSON round-trip
///
/// ```
/// use cres_platform::telemetry::{TelemetryConfig, TelemetryRecorder};
/// use cres_sim::{SimTime, Stage, StageSink};
///
/// let mut recorder = TelemetryRecorder::new(TelemetryConfig::default());
/// recorder.record_span(SimTime::at_cycle(7), Stage::Respond, 1, 10);
/// recorder.metrics_mut().counter_add("incidents.CodeInjection", 1);
///
/// let snapshot = recorder.snapshot();
/// let json = snapshot.to_json();
/// assert!(json.contains("\"respond\""));
/// let back = cres_platform::telemetry::TelemetrySnapshot::from_json(&json).unwrap();
/// assert_eq!(back, snapshot);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Total spans recorded (retained + overwritten).
    pub spans_recorded: u64,
    /// Spans lost to ring overflow.
    pub spans_dropped: u64,
    /// Ring capacity (summed across runs after a merge).
    pub ring_capacity: usize,
    /// Spans retained at snapshot time (summed across runs after a merge).
    pub ring_occupancy: usize,
    /// Per-span instrumentation cost in force.
    pub span_cost: u64,
    /// Total instrumentation cost in cycles (`spans_recorded × span_cost`).
    pub instrumentation_cycles: u64,
    /// Per-stage aggregates, pipeline order, zero-count stages omitted.
    pub stages: Vec<StageStat>,
    /// Counters, name order.
    pub counters: Vec<(String, u64)>,
    /// Gauges, name order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, name order.
    pub histograms: Vec<HistogramSnapshot>,
    /// The newest ≤16 spans, oldest-first (cleared by a merge — tails from
    /// different runs do not concatenate meaningfully).
    pub trace_tail: Vec<TraceSpan>,
}

impl TelemetrySnapshot {
    /// Aggregate of stage `stage`, if any spans were recorded for it.
    pub fn stage(&self, stage: Stage) -> Option<StageStat> {
        self.stages.iter().find(|s| s.stage == stage).copied()
    }

    /// Summed modelled pipeline work across all stages, in cycles.
    pub fn pipeline_cycles(&self) -> u64 {
        self.stages.iter().map(|s| s.cycles).sum()
    }

    /// Folds `other` into `self` (campaign aggregation, submission order).
    ///
    /// Counts, cycles, counters and histograms add; gauges are last-write-
    /// wins (the later job in submission order); capacity and occupancy
    /// sum; the trace tail is cleared — span streams from independent runs
    /// do not interleave meaningfully.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.spans_recorded += other.spans_recorded;
        self.spans_dropped += other.spans_dropped;
        self.ring_capacity += other.ring_capacity;
        self.ring_occupancy += other.ring_occupancy;
        self.instrumentation_cycles += other.instrumentation_cycles;
        for stage in Stage::ALL {
            let Some(theirs) = other.stage(stage) else {
                continue;
            };
            if let Some(mine) = self.stages.iter_mut().find(|s| s.stage == stage) {
                mine.count += theirs.count;
                mine.cycles += theirs.cycles;
            } else {
                self.stages.push(theirs);
                self.stages.sort_by_key(|s| s.stage.index());
            }
        }
        for (name, value) in &other.counters {
            match self.counters.binary_search_by(|(k, _)| k.cmp(name)) {
                Ok(i) => self.counters[i].1 += value,
                Err(i) => self.counters.insert(i, (name.clone(), *value)),
            }
        }
        for (name, value) in &other.gauges {
            match self.gauges.binary_search_by(|(k, _)| k.cmp(name)) {
                Ok(i) => self.gauges[i].1 = *value,
                Err(i) => self.gauges.insert(i, (name.clone(), *value)),
            }
        }
        for theirs in &other.histograms {
            if let Some(mine) = self.histograms.iter_mut().find(|h| h.name == theirs.name) {
                assert_eq!(mine.bounds, theirs.bounds, "histogram bounds mismatch");
                for (m, t) in mine.counts.iter_mut().zip(&theirs.counts) {
                    *m += t;
                }
                mine.total += theirs.total;
                mine.sum += theirs.sum;
            } else {
                self.histograms.push(theirs.clone());
                self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
            }
        }
        self.trace_tail.clear();
    }

    /// One-line summary for experiment output.
    pub fn summary_line(&self) -> String {
        format!(
            "{} spans ({} dropped), instrumentation {} cycles, pipeline work {} cycles",
            self.spans_recorded,
            self.spans_dropped,
            self.instrumentation_cycles,
            self.pipeline_cycles(),
        )
    }

    /// Multi-line per-stage breakdown for experiment output.
    pub fn stage_table(&self) -> String {
        let mut out = String::new();
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<16} {:>8} spans  {:>10} cycles\n",
                s.stage.name(),
                s.count,
                s.cycles
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(recorder: &mut TelemetryRecorder, cycle: u64, stage: Stage) {
        recorder.record_span(SimTime::at_cycle(cycle), stage, 0, 3);
    }

    #[test]
    fn ring_overwrites_oldest_without_allocating() {
        let mut ring = TraceRing::new(4);
        for cycle in 0..10 {
            ring.push(SimTime::at_cycle(cycle), Stage::EventEmit, 0, 1);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6);
        let cycles: Vec<u64> = ring.iter().map(|s| s.at.cycle()).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
        assert_eq!(ring.tail(2).len(), 2);
        assert_eq!(ring.tail(2)[0].at.cycle(), 8);
        // capacity was never exceeded
        assert!(ring.spans.capacity() <= 4 * 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_ring_panics() {
        TraceRing::new(0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [5, 10, 11, 1_000] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.sum(), 1_026);
        assert_eq!(h.mean(), Some(256.5));
    }

    #[test]
    fn histogram_cumulative_buckets_are_monotone_and_sum_to_count() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [5, 10, 11, 1_000, 2_000] {
            h.observe(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(
            buckets,
            vec![(Some(10), 2), (Some(100), 3), (None, 5)],
            "per-bound cumulative counts, +Inf last"
        );
        assert_eq!(buckets.last().unwrap().1, h.total());
        // the snapshot view agrees with the live histogram
        let snap = HistogramSnapshot {
            name: "h".into(),
            bounds: h.bounds().to_vec(),
            counts: h.counts().to_vec(),
            total: h.total(),
            sum: h.sum(),
        };
        assert_eq!(snap.cumulative_buckets(), buckets);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let mut a = Histogram::new(&[10]);
        let mut b = Histogram::new(&[10]);
        a.observe(1);
        b.observe(100);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn registry_is_deterministically_ordered() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z", 1);
        m.counter_add("a", 2);
        m.counter_add("z", 1);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(m.counter("z"), Some(2));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn observing_unregistered_histogram_panics() {
        MetricsRegistry::new().observe("nope", 1);
    }

    #[test]
    fn recorder_charges_span_cost_and_aggregates_stages() {
        let mut r = TelemetryRecorder::new(TelemetryConfig {
            enabled: true,
            ring_capacity: 8,
            span_cost: 5,
            pool_stats: false,
        });
        span(&mut r, 1, Stage::MonitorSample);
        span(&mut r, 2, Stage::MonitorSample);
        span(&mut r, 3, Stage::Correlate);
        assert_eq!(r.instrumentation_cycles(), 15);
        let snap = r.snapshot();
        assert_eq!(snap.stage(Stage::MonitorSample).unwrap().count, 2);
        assert_eq!(snap.stage(Stage::MonitorSample).unwrap().cycles, 6);
        assert_eq!(snap.stage(Stage::Plan), None);
        assert_eq!(snap.pipeline_cycles(), 9);
        assert_eq!(snap.trace_tail.len(), 3);
    }

    #[test]
    fn recorder_reset_clears_everything() {
        let mut r = TelemetryRecorder::new(TelemetryConfig::default());
        span(&mut r, 1, Stage::EvidenceAppend);
        r.metrics_mut().counter_add("x", 1);
        r.reset();
        assert_eq!(r.instrumentation_cycles(), 0);
        assert!(r.ring().is_empty());
        let snap = r.snapshot();
        assert_eq!(snap.spans_recorded, 0);
        assert!(snap.counters.is_empty());
        // pre-registered histogram survives the reset
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].name, "detection_latency_cycles");
    }

    #[test]
    fn merge_is_submission_order_deterministic() {
        let mk = |cycle, counter: &str| {
            let mut r = TelemetryRecorder::new(TelemetryConfig::default());
            span(&mut r, cycle, Stage::Classify);
            r.metrics_mut().counter_add(counter, 1);
            r.metrics_mut().gauge_set("g", cycle as f64);
            r.metrics_mut().observe("detection_latency_cycles", cycle);
            r.snapshot()
        };
        let a = mk(100, "alpha");
        let b = mk(200, "beta");

        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.spans_recorded, 2);
        assert_eq!(ab.stage(Stage::Classify).unwrap().count, 2);
        assert_eq!(ab.counters.len(), 2);
        // gauge: last write (submission order) wins
        assert_eq!(ab.gauges[0].1, 200.0);
        assert_eq!(ab.histograms[0].total, 2);
        assert!(ab.trace_tail.is_empty());

        // associativity with a third snapshot: (a+b)+c == a+(b+c)
        let c = mk(300, "alpha");
        let mut left = ab.clone();
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn summary_and_stage_table_render() {
        let mut r = TelemetryRecorder::new(TelemetryConfig::default());
        span(&mut r, 1, Stage::Respond);
        let snap = r.snapshot();
        assert!(snap.summary_line().contains("1 spans"));
        assert!(snap.stage_table().contains("respond"));
    }
}
