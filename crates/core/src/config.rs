//! Platform profiles and configuration.

use crate::faultplane::FaultPlaneConfig;
use crate::telemetry::TelemetryConfig;
use cres_response::PolicyConfig;
use cres_sim::SimDuration;
use cres_ssm::{PlannerMode, SsmDeployment};
use cres_tee::TeeDeployment;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three platform topologies the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformProfile {
    /// The paper's proposal: physically isolated SSM, full active monitor
    /// set, active response, hash-chained evidence.
    CyberResilient,
    /// The state of the art the paper critiques: secure boot + watchdog +
    /// reboot-on-fault, logs in attacker-reachable memory, no runtime
    /// monitors.
    PassiveTrust,
    /// CyberResilient's monitor set but with the security manager and TEE
    /// sharing physical resources with the GPP (§IV's vulnerable shape).
    TeeShared,
}

impl PlatformProfile {
    /// All profiles.
    pub const ALL: [PlatformProfile; 3] = [
        PlatformProfile::CyberResilient,
        PlatformProfile::PassiveTrust,
        PlatformProfile::TeeShared,
    ];
}

impl fmt::Display for PlatformProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Full platform configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlatformConfig {
    /// Topology profile.
    pub profile: PlatformProfile,
    /// Master seed for all determinism (keys, noise, workloads).
    pub seed: u64,
    /// Monitor sampling period in cycles.
    pub monitor_period: SimDuration,
    /// Reboot latency.
    pub reboot_duration: SimDuration,
    /// Quiet window after countermeasures before declaring recovery.
    pub recovery_window: SimDuration,
    /// Watchdog timeout.
    pub watchdog_timeout: SimDuration,
    /// RSA modulus size for vendor/boot keys (small for test speed).
    pub rsa_bits: usize,
    /// Enable evidence recording (ablation A2).
    pub evidence_enabled: bool,
    /// Enable the correlation engine (ablation A1).
    pub correlation_enabled: bool,
    /// Whether attack injectors can reach the firmware slot store (models
    /// an attacker with update-channel access).
    pub expose_slots_to_attacker: bool,
    /// Overrides the profile-implied planner mode (E4 isolates the
    /// response variable by running full monitors with a passive planner).
    pub planner_override: Option<PlannerMode>,
    /// Pipeline telemetry layer (trace ring + metrics registry); disable
    /// for the zero-instrumentation baseline E8 compares against.
    pub telemetry: TelemetryConfig,
    /// Fault injection into the security pipeline itself (E11); default
    /// off, which is bit-identical to a platform without a fault plane.
    pub faultplane: FaultPlaneConfig,
    /// The stateful response policy engine (circuit breakers, graded
    /// degradation tiers, availability accounting — E14); default off,
    /// which is bit-identical to a platform without a policy engine.
    pub policy: PolicyConfig,
}

impl PlatformConfig {
    /// Sensible defaults for a profile.
    pub fn new(profile: PlatformProfile, seed: u64) -> Self {
        PlatformConfig {
            profile,
            seed,
            monitor_period: SimDuration::cycles(5_000),
            reboot_duration: SimDuration::cycles(50_000),
            recovery_window: SimDuration::cycles(100_000),
            watchdog_timeout: SimDuration::cycles(500_000),
            rsa_bits: 512,
            // the passive baseline has no SSM, hence no evidence store —
            // its only audit trail is the wipeable console log
            evidence_enabled: profile != PlatformProfile::PassiveTrust,
            correlation_enabled: true,
            expose_slots_to_attacker: false,
            planner_override: None,
            telemetry: TelemetryConfig::default(),
            faultplane: FaultPlaneConfig::default(),
            policy: PolicyConfig::default(),
        }
    }

    /// The SSM deployment implied by the profile.
    pub fn ssm_deployment(&self) -> SsmDeployment {
        match self.profile {
            PlatformProfile::CyberResilient => SsmDeployment::IsolatedCore,
            PlatformProfile::PassiveTrust => SsmDeployment::SharedWithGpp,
            PlatformProfile::TeeShared => SsmDeployment::SharedWithGpp,
        }
    }

    /// The TEE deployment implied by the profile.
    pub fn tee_deployment(&self) -> TeeDeployment {
        match self.profile {
            PlatformProfile::CyberResilient => TeeDeployment::IsolatedCoprocessor,
            PlatformProfile::PassiveTrust | PlatformProfile::TeeShared => {
                TeeDeployment::SharedResources
            }
        }
    }

    /// The response planner mode implied by the profile (or overridden).
    pub fn planner_mode(&self) -> PlannerMode {
        if let Some(mode) = self.planner_override {
            return mode;
        }
        match self.profile {
            PlatformProfile::PassiveTrust => PlannerMode::PassiveRebootOnly,
            _ => PlannerMode::Active,
        }
    }

    /// Whether the profile deploys the active monitor set (the baseline has
    /// only the watchdog).
    pub fn active_monitors(&self) -> bool {
        self.profile != PlatformProfile::PassiveTrust
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_imply_topologies() {
        let cres = PlatformConfig::new(PlatformProfile::CyberResilient, 0);
        assert_eq!(cres.ssm_deployment(), SsmDeployment::IsolatedCore);
        assert_eq!(cres.tee_deployment(), TeeDeployment::IsolatedCoprocessor);
        assert_eq!(cres.planner_mode(), PlannerMode::Active);
        assert!(cres.active_monitors());

        let passive = PlatformConfig::new(PlatformProfile::PassiveTrust, 0);
        assert_eq!(passive.planner_mode(), PlannerMode::PassiveRebootOnly);
        assert!(!passive.active_monitors());

        let shared = PlatformConfig::new(PlatformProfile::TeeShared, 0);
        assert_eq!(shared.ssm_deployment(), SsmDeployment::SharedWithGpp);
        assert_eq!(shared.tee_deployment(), TeeDeployment::SharedResources);
        assert!(shared.active_monitors());
    }

    #[test]
    fn profile_display() {
        assert_eq!(
            PlatformProfile::CyberResilient.to_string(),
            "CyberResilient"
        );
        assert_eq!(PlatformProfile::ALL.len(), 3);
    }
}
