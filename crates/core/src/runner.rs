//! The discrete-event scenario runner.
//!
//! Drives the full detect→respond→recover loop: workload tasks pump
//! themselves through the simulator, monitors sample on their period, the
//! SSM ingests and plans, the response manager executes, and recovery
//! checks return the platform to health after a quiet window. Attacks are
//! scheduled scripts of injector steps.

use crate::config::PlatformConfig;
use crate::metrics::{matching_incident_kinds, AttackOutcomeReport, RunReport};
use crate::platform::Platform;
use crate::pool::{PlatformPool, ScoreScratch};
use cres_attacks::AttackInjector;
use cres_forensics::Timeline;
use cres_sim::{SimDuration, SimTime, Simulator};
use cres_soc::periph::{Packet, PacketKind};
use cres_soc::soc::layout;
use cres_soc::task::{control_loop_program, Criticality, Task, TaskId};
use cres_ssm::{HealthState, ResponseAction};

/// One scheduled attack.
pub struct AttackSpec {
    /// When the first step fires.
    pub start: SimTime,
    /// Interval between steps.
    pub step_interval: SimDuration,
    /// The injector.
    pub injector: Box<dyn AttackInjector>,
}

/// A runnable scenario.
pub struct Scenario {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Attacks to schedule.
    pub attacks: Vec<AttackSpec>,
    /// Period of benign background network traffic (None = no traffic).
    pub benign_packet_period: Option<SimDuration>,
    /// Pre-deployment syscall-model training rounds.
    pub training_rounds: u32,
    /// Install the default three-task workload (relay/telemetry/logger).
    pub default_workload: bool,
}

impl Scenario {
    /// An attack-free scenario of the given length.
    pub fn quiet(duration: SimDuration) -> Self {
        Scenario {
            duration,
            attacks: Vec::new(),
            benign_packet_period: Some(SimDuration::cycles(2_000)),
            training_rounds: 50,
            default_workload: true,
        }
    }

    /// Adds an attack starting at `start` with one step per
    /// `step_interval`.
    pub fn attack(
        mut self,
        start: SimTime,
        step_interval: SimDuration,
        injector: Box<dyn AttackInjector>,
    ) -> Self {
        self.attacks.push(AttackSpec {
            start,
            step_interval,
            injector,
        });
        self
    }
}

/// Runs scenarios against a platform configuration.
pub struct ScenarioRunner {
    config: PlatformConfig,
}

impl ScenarioRunner {
    /// Creates a runner.
    pub fn new(config: PlatformConfig) -> Self {
        ScenarioRunner { config }
    }

    /// Installs the default workload: a critical protection-relay loop, a
    /// best-effort telemetry loop and an important logger loop.
    pub fn install_default_workload(platform: &mut Platform) {
        let relay = Task::new(
            TaskId(1),
            "protection-relay",
            control_loop_program(layout::FLASH_A.0, layout::SRAM.0, layout::PERIPH.0),
            Criticality::Critical,
        );
        let telemetry = Task::new(
            TaskId(2),
            "telemetry",
            control_loop_program(
                layout::FLASH_A.0.offset(0x2000),
                layout::SRAM.0.offset(0x2000),
                layout::PERIPH.0.offset(0x200),
            ),
            Criticality::BestEffort,
        );
        let logger = Task::new(
            TaskId(3),
            "logger",
            control_loop_program(
                layout::FLASH_A.0.offset(0x4000),
                layout::SRAM.0.offset(0x4000),
                layout::PERIPH.0.offset(0x400),
            ),
            Criticality::Important,
        );
        platform.add_task(relay, 0);
        platform.add_task(telemetry, 1);
        platform.add_task(logger, 2);
    }

    /// Builds the platform, runs the scenario and scores the result.
    pub fn run(self, scenario: Scenario) -> RunReport {
        self.run_keep(scenario).0
    }

    /// [`ScenarioRunner::run`], but hands back the finished platform
    /// alongside the report — the export plane reads the full trace ring,
    /// evidence chain and seal history from it post-hoc (the report's
    /// telemetry snapshot keeps only a 16-span tail). The report is
    /// bit-identical to [`ScenarioRunner::run`]'s.
    pub fn run_keep(self, scenario: Scenario) -> (RunReport, Platform) {
        let mut platform = Platform::new(self.config);
        let mut scratch = ScoreScratch::default();
        let report = self.run_on(&mut platform, scenario, &mut scratch);
        (report, platform)
    }

    /// [`ScenarioRunner::run`] on a pooled platform: acquires from `pool`
    /// (recycling the previous job's platform and provisioning cache),
    /// runs, scores with the pool's reusable scratch, and releases the
    /// platform back for the next job. The report is bit-identical to
    /// [`ScenarioRunner::run`]'s.
    pub fn run_pooled(&self, pool: &mut PlatformPool, scenario: Scenario) -> RunReport {
        let mut platform = pool.acquire(self.config);
        let mut report = self.run_on(&mut platform, scenario, pool.scratch_mut());
        pool.release(platform);
        // Opt-in pool-warmth audit: the counters are cumulative over the
        // worker's whole job stream, hence schedule-dependent — see the
        // `TelemetryConfig::pool_stats` docs for why this defaults off.
        if self.config.telemetry.enabled && self.config.telemetry.pool_stats {
            report.pool = Some(pool.stats());
        }
        report
    }

    fn run_on(
        &self,
        platform: &mut Platform,
        scenario: Scenario,
        scratch: &mut ScoreScratch,
    ) -> RunReport {
        if scenario.default_workload {
            Self::install_default_workload(platform);
        }
        if scenario.training_rounds > 0 {
            platform.train_syscall_monitor(scenario.training_rounds);
        }

        let mut sim: Simulator<Platform> = Simulator::new();
        let horizon = SimTime::ZERO + scenario.duration;

        // Workload pumps.
        for id in platform.soc.task_ids() {
            pump_task(&mut sim, id, SimTime::at_cycle(1));
        }

        // Benign traffic.
        if let Some(period) = scenario.benign_packet_period {
            sim.schedule_periodic(period, |p, sim| {
                let now = sim.now();
                p.soc.deliver_packet(Packet {
                    src: 2,
                    dst: 1,
                    len: 96,
                    kind: PacketKind::Command,
                    at: now,
                });
                p.soc.nic.send(Packet {
                    src: 1,
                    dst: 2,
                    len: 128,
                    kind: PacketKind::Telemetry,
                    at: now,
                });
                while p.soc.nic.receive().is_some() {}
                p.soc.irq.acknowledge(cres_soc::periph::IrqLine::NicRx);
                true
            });
        }

        // Monitor sampling + detect/respond/recover loop.
        let recovery_window = self.config.recovery_window;
        let policy_enabled = self.config.policy.enabled;
        sim.schedule_periodic(self.config.monitor_period, move |p, sim| {
            let now = sim.now();
            // Policy heartbeat first: service-availability sampling and
            // hysteresis holdoffs advance even on quiet ticks (no-op when
            // the policy engine is off).
            p.policy_tick(now);
            // Buffered pair: the steady-state (no-event) tick reuses the
            // platform's event buffer and performs no heap allocation.
            let collected = p.sample_monitors_buffered(now);
            if collected == 0 {
                return true;
            }
            let plans = p.ingest_sampled(now);
            for plan in &plans {
                let reboots = plan.actions.iter().any(|a| {
                    matches!(
                        a,
                        ResponseAction::RebootSystem
                            | ResponseAction::RollbackFirmware
                            | ResponseAction::GoldenRecovery
                    )
                });
                if reboots {
                    p.ssm
                        .record_recovery_started(now, "reboot/rollback recovery");
                    let done = now + p.response.reboot_duration() + SimDuration::cycles(1);
                    sim.schedule_at(done, move |p: &mut Platform, _| {
                        p.update.record_boot_success();
                        p.ssm.record_recovered(done);
                    });
                } else if !policy_enabled {
                    // Quiet-window recovery: if no new incidents arrive
                    // within the window, restore service. The policy
                    // engine supersedes this path — tiers step back to
                    // Full through hysteresis in `policy_tick` instead of
                    // snapping everything open after one quiet window.
                    let incidents_now = p.ssm.incidents().len();
                    sim.schedule_at(now + recovery_window, move |p: &mut Platform, sim| {
                        if p.ssm.incidents().len() == incidents_now
                            && p.ssm.health() != HealthState::Healthy
                        {
                            p.response.exit_degraded(&mut p.soc);
                            p.response.restore_network(&mut p.soc);
                            p.ssm.record_recovered(sim.now());
                        }
                    });
                }
            }
            true
        });

        // Periodic Merkle audit seals over the evidence chain (an external
        // auditor can then verify any single record without a full replay).
        sim.schedule_periodic(SimDuration::cycles(250_000), |p, sim| {
            p.ssm.seal_evidence(sim.now());
            true
        });

        // Attacks.
        for spec in scenario.attacks {
            let idx = platform.add_attack(spec.injector);
            let interval = spec.step_interval;
            pump_attack(&mut sim, idx, spec.start, interval);
        }

        sim.run_until(platform, horizon);

        // Final drain so nothing observed goes unscored.
        let events = platform.sample_monitors(horizon);
        platform.ingest_and_respond(horizon, events);

        Self::score(self.config, scenario.duration, platform, scratch)
    }

    fn score(
        config: PlatformConfig,
        duration: SimDuration,
        platform: &mut Platform,
        scratch: &mut ScoreScratch,
    ) -> RunReport {
        let end = SimTime::ZERO + duration;
        let mut attacks = Vec::new();
        let ground_truth = &mut scratch.ground_truth;
        ground_truth.clear();
        let mut attacker_wins = 0u32;
        for idx in 0..platform.attack_count() {
            let injector = platform.attack(idx);
            let kind = injector.kind();
            let times = injector.injection_times();
            ground_truth.extend_from_slice(times);
            let first_injection = times.first().copied();
            let matching = matching_incident_kinds(kind);
            let mut matching_incidents = 0u32;
            let mut detected_at: Option<SimTime> = None;
            if let Some(t0) = first_injection {
                for incident in platform.ssm.incidents() {
                    if incident.classified_at >= t0 && matching.contains(&incident.kind) {
                        matching_incidents += 1;
                        if detected_at.is_none() {
                            detected_at = Some(incident.classified_at);
                        }
                    }
                }
            }
            let (executed, achieved) = platform.attack_stats(idx);
            attacker_wins += achieved;
            attacks.push(AttackOutcomeReport {
                name: injector.name().to_string(),
                kind,
                first_injection,
                detected_at,
                detection_latency: match (first_injection, detected_at) {
                    (Some(a), Some(b)) => Some(b.saturating_since(a).as_cycles()),
                    _ => None,
                },
                matching_incidents,
                steps_achieved: achieved,
                steps_executed: executed,
            });
        }

        let timeline = Timeline::reconstruct(platform.ssm.evidence().records());
        let tolerance = config.monitor_period.as_cycles() * 3 + 1_000;
        let evidence_coverage = timeline.coverage(ground_truth, tolerance);
        let (total_events, total_incidents) = platform.ssm.correlation_stats();

        // Freeze end-of-run telemetry: scoring-time metrics (latency
        // histogram, per-kind incident counters, occupancy/chain gauges)
        // join the span aggregates collected during the run.
        // Fold SSM-owned resilience outcomes (quarantine count, degraded
        // correlation) into the fault-plane stats before freezing them.
        let faultplane = platform.faultplane.as_mut().map(|fp| {
            let stats = fp.stats_mut();
            stats.monitors_quarantined = platform.ssm.quarantined_monitors().len() as u64;
            stats.degraded_correlation = platform.ssm.sensing_degraded();
            *stats
        });

        let availability_detail = platform.policy.as_mut().map(|policy| policy.finish(end));

        let telemetry = if let Some(recorder) = platform.telemetry.as_mut() {
            let occupancy = recorder.ring().len() as f64;
            let metrics = recorder.metrics_mut();
            for attack in &attacks {
                if let Some(latency) = attack.detection_latency {
                    metrics.observe("detection_latency_cycles", latency);
                }
            }
            for incident in platform.ssm.incidents() {
                metrics.counter_add(&format!("incidents.{}", incident.kind), 1);
            }
            metrics.gauge_set("evidence_chain_len", platform.ssm.evidence().len() as f64);
            metrics.gauge_set("trace_ring_occupancy", occupancy);
            if let Some(stats) = &faultplane {
                metrics.counter_add("faultplane.events_lost", stats.events_lost);
                metrics.counter_add("faultplane.events_delayed", stats.events_delayed);
                metrics.counter_add("faultplane.events_reordered", stats.events_reordered);
                metrics.counter_add("faultplane.events_corrupted", stats.events_corrupted);
                metrics.counter_add("faultplane.delivery_retries", stats.delivery_retries);
                metrics.counter_add(
                    "faultplane.recovered_deliveries",
                    stats.recovered_deliveries,
                );
                metrics.counter_add("faultplane.backoff_cycles", stats.backoff_cycles);
                metrics.counter_add("faultplane.monitor_stalls", stats.monitor_stalls);
                metrics.counter_add("faultplane.monitors_crashed", stats.monitors_crashed);
                metrics.counter_add(
                    "faultplane.monitors_quarantined",
                    stats.monitors_quarantined,
                );
                metrics.counter_add("faultplane.response_drops", stats.response_drops);
                metrics.counter_add("faultplane.response_retries", stats.response_retries);
                metrics.gauge_set(
                    "faultplane.degraded_correlation",
                    f64::from(u8::from(stats.degraded_correlation)),
                );
            }
            if let Some(detail) = &availability_detail {
                metrics.counter_add("policy.tier_raises", u64::from(detail.tier_raises));
                metrics.counter_add("policy.tier_lowers", u64::from(detail.tier_lowers));
                metrics.counter_add("policy.breaker_trips", u64::from(detail.breaker_trips));
                metrics.counter_add("policy.breaker_resets", u64::from(detail.breaker_resets));
                metrics.counter_add(
                    "policy.actions_suppressed",
                    u64::from(detail.actions_suppressed),
                );
                metrics.gauge_set(
                    "policy.critical_availability",
                    detail.critical_availability(),
                );
                metrics.gauge_set(
                    "policy.noncritical_availability",
                    detail.noncritical_availability(),
                );
                metrics.gauge_set("policy.peak_tier", detail.peak_tier.index() as f64);
            }
            Some(recorder.snapshot())
        } else {
            None
        };

        RunReport {
            profile: config.profile,
            seed: config.seed,
            duration_cycles: duration.as_cycles(),
            boot_ok: platform.boot_report.booted(),
            attacks,
            total_events,
            total_incidents,
            availability: platform.ssm.health_tracker().service_availability(end),
            final_health: platform.ssm.health(),
            critical_steps: platform.critical_steps,
            evidence_len: platform.ssm.evidence().len(),
            evidence_chain_ok: platform.ssm.evidence().verify().is_ok(),
            evidence_seals: platform.ssm.evidence().seals().len(),
            evidence_coverage,
            console_lines: platform.soc.uart.lines().len(),
            monitor_overhead_cycles: platform.monitor_overhead_cycles,
            reboots: platform.reboots,
            attacker_wins,
            telemetry,
            faultplane,
            availability_detail,
            pool: None,
        }
    }
}

/// Self-rescheduling task pump.
fn pump_task(sim: &mut Simulator<Platform>, id: TaskId, at: SimTime) {
    sim.schedule_labeled(at, "task-step", move |p: &mut Platform, sim| {
        let next = match p.step_task_and_observe(id, sim.now()) {
            Some(delay) => sim.now() + delay,
            // halted/killed/in-reset: poll again later (response actions
            // may restart the task)
            None => sim.now() + SimDuration::cycles(2_000),
        };
        pump_task(sim, id, next);
    });
}

/// Self-rescheduling attack pump.
fn pump_attack(sim: &mut Simulator<Platform>, idx: usize, at: SimTime, interval: SimDuration) {
    sim.schedule_labeled(at, "attack-step", move |p: &mut Platform, sim| {
        if p.attack_step(idx, sim.now()).is_some() {
            pump_attack(sim, idx, sim.now() + interval, interval);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformProfile;
    use cres_attacks::{CodeInjectionAttack, NetworkFloodAttack, SensorSpoofAttack};
    use cres_soc::periph::SensorSpoof;
    use cres_soc::task::BlockId;

    fn cfg(profile: PlatformProfile) -> PlatformConfig {
        PlatformConfig::new(profile, 42)
    }

    #[test]
    fn quiet_run_stays_healthy() {
        let report = ScenarioRunner::new(cfg(PlatformProfile::CyberResilient))
            .run(Scenario::quiet(SimDuration::cycles(300_000)));
        assert!(report.boot_ok);
        assert_eq!(report.total_incidents, 0, "false positives in quiet run");
        assert_eq!(report.final_health, HealthState::Healthy);
        assert!(report.availability > 0.999);
        assert!(report.critical_steps > 100);
        assert!(report.evidence_chain_ok);
        assert_eq!(report.attacker_wins, 0);
        assert!(report.evidence_seals >= 1, "no audit seals were taken");
    }

    #[test]
    fn quiet_run_is_reproducible() {
        let run = || {
            ScenarioRunner::new(cfg(PlatformProfile::CyberResilient))
                .run(Scenario::quiet(SimDuration::cycles(200_000)))
        };
        let a = run();
        let b = run();
        assert_eq!(a.critical_steps, b.critical_steps);
        assert_eq!(a.total_events, b.total_events);
        assert_eq!(a.evidence_len, b.evidence_len);
    }

    #[test]
    fn code_injection_detected_on_cres() {
        let scenario = Scenario::quiet(SimDuration::cycles(400_000)).attack(
            SimTime::at_cycle(100_000),
            SimDuration::cycles(5_000),
            Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(3), 3)),
        );
        let report = ScenarioRunner::new(cfg(PlatformProfile::CyberResilient)).run(scenario);
        assert_eq!(report.attacks.len(), 1);
        assert!(report.attacks[0].detected(), "{:?}", report.attacks[0]);
        let latency = report.attacks[0].detection_latency.unwrap();
        assert!(latency <= 20_000, "latency {latency} too high");
        assert!(report.evidence_chain_ok);
        assert!(report.evidence_coverage > 0.5);
    }

    #[test]
    fn code_injection_missed_on_baseline() {
        let scenario = Scenario::quiet(SimDuration::cycles(400_000)).attack(
            SimTime::at_cycle(100_000),
            SimDuration::cycles(5_000),
            Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(3), 3)),
        );
        let report = ScenarioRunner::new(cfg(PlatformProfile::PassiveTrust)).run(scenario);
        assert!(!report.attacks[0].detected());
        assert_eq!(report.total_incidents, 0);
    }

    #[test]
    fn flood_detected_and_rate_limited() {
        let scenario = Scenario::quiet(SimDuration::cycles(500_000)).attack(
            SimTime::at_cycle(100_000),
            SimDuration::cycles(2_000),
            Box::new(NetworkFloodAttack::new(300, 10)),
        );
        let report = ScenarioRunner::new(cfg(PlatformProfile::CyberResilient)).run(scenario);
        assert!(report.attacks[0].detected());
        // active response: no reboot needed for a flood, and the critical
        // relay keeps delivering service at the quiet-run rate
        assert_eq!(report.reboots, 0);
        let quiet = ScenarioRunner::new(cfg(PlatformProfile::CyberResilient))
            .run(Scenario::quiet(SimDuration::cycles(500_000)));
        let ratio = report.critical_steps as f64 / quiet.critical_steps as f64;
        assert!(ratio > 0.95, "relay throughput dropped to {ratio}");
    }

    #[test]
    fn system_hang_is_the_baselines_one_detection() {
        // The watchdog path: both profiles detect a firmware crash, and the
        // baseline's reboot actually restores service.
        let scenario = || {
            Scenario::quiet(SimDuration::cycles(1_500_000)).attack(
                SimTime::at_cycle(300_000),
                SimDuration::cycles(1_000),
                Box::new(cres_attacks::SystemHangAttack::new()),
            )
        };
        let passive = ScenarioRunner::new(cfg(PlatformProfile::PassiveTrust)).run(scenario());
        assert!(
            passive.attacks[0].detected(),
            "baseline watchdog missed the hang"
        );
        assert!(passive.reboots >= 1, "baseline never rebooted");
        // service resumed after the reboot: steps continued past the hang
        assert!(passive.critical_steps > 1_000);
        let cres = ScenarioRunner::new(cfg(PlatformProfile::CyberResilient)).run(scenario());
        assert!(cres.attacks[0].detected());
    }

    #[test]
    fn taint_flow_detected_on_shared_topology() {
        // DMA steals from tee_secure and stages into the peripheral window:
        // on the shared topology the MPU grants it, but the taint monitor
        // flags the secret→egress flow.
        use cres_soc::soc::layout;
        let scenario = Scenario::quiet(SimDuration::cycles(600_000)).attack(
            SimTime::at_cycle(200_000),
            SimDuration::cycles(5_000),
            Box::new(cres_attacks::DmaExfilAttack::new(
                layout::TEE_SECURE.0,
                layout::PERIPH.0.offset(0x800),
                64,
            )),
        );
        let report = ScenarioRunner::new(cfg(PlatformProfile::TeeShared)).run(scenario);
        assert!(report.attacks[0].detected());
        // ground truth: the copy actually succeeded on this topology
        assert!(report.attacks[0].steps_achieved > 0);
    }

    #[test]
    fn escalation_marks_staged_campaigns() {
        let scenario = Scenario::quiet(SimDuration::cycles(900_000))
            .attack(
                SimTime::at_cycle(200_000),
                SimDuration::cycles(5_000),
                Box::new(cres_attacks::NetworkFloodAttack::new(300, 3)),
            )
            .attack(
                SimTime::at_cycle(260_000),
                SimDuration::cycles(5_000),
                Box::new(cres_attacks::MalformedTrafficAttack::new(5, 2)),
            );
        let report = ScenarioRunner::new(cfg(PlatformProfile::CyberResilient)).run(scenario);
        assert!(report.attacks.iter().all(|a| a.detected()));
        // second-kind incident inside the escalation window is escalated —
        // verified at the unit level; here we confirm both kinds classified
        assert!(report.total_incidents >= 2);
    }

    #[test]
    fn policy_engine_degrades_and_recovers_with_hysteresis() {
        let mut config = cfg(PlatformProfile::CyberResilient);
        config.policy = cres_response::PolicyConfig::enabled();
        let scenario = Scenario::quiet(SimDuration::cycles(1_500_000)).attack(
            SimTime::at_cycle(100_000),
            SimDuration::cycles(2_000),
            Box::new(NetworkFloodAttack::new(300, 20)),
        );
        let report = ScenarioRunner::new(config).run(scenario);
        assert!(report.attacks[0].detected());
        let detail = report.availability_detail.expect("policy armed");
        assert!(detail.tier_raises >= 1, "never degraded: {detail:?}");
        // hysteresis recovery: quiet ticks after the flood stepped the
        // tier back down instead of pinning the posture forever
        assert!(detail.tier_lowers >= 1, "never recovered: {detail:?}");
        assert!(
            detail.critical_availability() > 0.9,
            "critical service collapsed: {detail:?}"
        );
        assert!(detail.time_in_tier[0] > 0, "{detail:?}");
    }

    #[test]
    fn policy_off_reports_no_availability_detail() {
        let report = ScenarioRunner::new(cfg(PlatformProfile::CyberResilient))
            .run(Scenario::quiet(SimDuration::cycles(200_000)));
        assert_eq!(report.availability_detail, None);
    }

    #[test]
    fn policy_run_is_reproducible() {
        let run = || {
            let mut config = cfg(PlatformProfile::CyberResilient);
            config.policy = cres_response::PolicyConfig::enabled();
            let scenario = Scenario::quiet(SimDuration::cycles(600_000)).attack(
                SimTime::at_cycle(100_000),
                SimDuration::cycles(2_000),
                Box::new(NetworkFloodAttack::new(300, 10)),
            );
            ScenarioRunner::new(config).run(scenario)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn sensor_spoof_detected_and_recovers() {
        let scenario = Scenario::quiet(SimDuration::cycles(800_000)).attack(
            SimTime::at_cycle(100_000),
            SimDuration::cycles(1_000),
            Box::new(SensorSpoofAttack::new(0, SensorSpoof::Fixed(60.0))),
        );
        let report = ScenarioRunner::new(cfg(PlatformProfile::CyberResilient)).run(scenario);
        assert!(report.attacks[0].detected());
        assert!(report.critical_steps > 0);
    }
}
