#![deny(missing_docs)]

//! The cyber-resilient embedded platform: the paper's three
//! microarchitectural characteristics assembled into a runnable system.
//!
//! This crate wires the whole workspace together:
//!
//! * [`config`] — platform profiles: [`config::PlatformProfile::CyberResilient`]
//!   (isolated SSM + active monitors + active response),
//!   [`config::PlatformProfile::PassiveTrust`] (secure boot + watchdog +
//!   reboot: the state of the art the paper critiques) and
//!   [`config::PlatformProfile::TeeShared`] (adds a resource-sharing TEE,
//!   §IV's vulnerable topology),
//! * [`provision`] — factory provisioning: vendor keys, signed firmware,
//!   fused OTP, derived device keys, TEE population,
//! * [`platform`] — the [`platform::Platform`]: SoC + boot chain + TEE +
//!   monitors + SSM + response manager, with the isolation topology
//!   *enforced through the permission matrix*,
//! * [`runner`] — the discrete-event scenario runner driving workload,
//!   monitors, attacks and the detect→respond→recover loop,
//! * [`metrics`] — the [`metrics::RunReport`] experiments consume,
//! * [`campaign`] — the parallel campaign engine fanning independent
//!   scenario runs across a scoped worker pool with deterministic,
//!   submission-ordered results,
//! * [`pool`] — per-worker platform pooling (provisioning cache +
//!   platform recycling): campaign jobs skip repeated RSA keygen and big
//!   buffer rebuilds while staying bit-identical to fresh runs,
//! * [`telemetry`] — always-on pipeline observability: a cycle-stamped
//!   trace ring, per-stage cost accounting and a metrics registry that
//!   merges deterministically across campaign jobs,
//! * [`comms`] — TEE-keyed authenticated M2M telemetry (tamper, forgery
//!   and replay rejection — the paper's §III-4 MITM concern).
//!
//! # Quickstart
//!
//! ```
//! use cres_platform::config::{PlatformConfig, PlatformProfile};
//! use cres_platform::runner::{Scenario, ScenarioRunner};
//! use cres_sim::SimDuration;
//!
//! let config = PlatformConfig::new(PlatformProfile::CyberResilient, 42);
//! let scenario = Scenario::quiet(SimDuration::cycles(200_000));
//! let report = ScenarioRunner::new(config).run(scenario);
//! assert!(report.boot_ok);
//! assert!(report.evidence_chain_ok);
//! ```

pub mod campaign;
pub mod comms;
pub mod config;
pub mod faultplane;
pub mod json;
pub mod metrics;
pub mod platform;
pub mod pool;
pub mod provision;
pub mod runner;
pub mod telemetry;

pub use campaign::{Campaign, CampaignSummary, Job, JobResult, ScenarioSpec};
pub use comms::{AuthMessage, RejectReason, SecureChannel};
pub use config::{PlatformConfig, PlatformProfile};
pub use faultplane::{FaultPlane, FaultPlaneConfig, FaultPlaneStats, RetryPolicy};
pub use metrics::{AttackOutcomeReport, RunReport};
pub use platform::Platform;
pub use pool::{PlatformPool, PoolStats, ScoreScratch};
pub use runner::{Scenario, ScenarioRunner};
pub use telemetry::{
    MetricsRegistry, TelemetryConfig, TelemetryRecorder, TelemetrySnapshot, TraceRing, TraceSpan,
};
