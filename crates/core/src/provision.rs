//! Factory provisioning: keys, firmware, fuses and the TEE population.
//!
//! Provisioning is a pure function of the master seed, so every experiment
//! run builds bit-identical devices.

use crate::config::PlatformConfig;
use cres_boot::{BootChain, BootPolicy, BootRom, ImageSigner, SlotStore, UpdateEngine};
use cres_crypto::drbg::HmacDrbg;
use cres_crypto::hkdf;
use cres_crypto::rsa::{generate_keypair, RsaKeypair};
use cres_crypto::sha2::Sha256;
use cres_tee::{TaSigner, Tee};

/// Everything the factory hands to the platform builder.
///
/// `Clone` lets the platform pool provision once per `(seed, rsa_bits,
/// TEE deployment)` cell and hand out copies: RSA key generation dominates
/// platform construction cost (and allocation count) by orders of
/// magnitude, and [`provision`] is a pure function of those inputs.
#[derive(Clone)]
pub struct Provisioned {
    /// Vendor signing keypair (stays "at the factory"; experiments use it
    /// to mint old images for downgrade attacks).
    pub vendor: RsaKeypair,
    /// Image signing tool.
    pub signer: ImageSigner,
    /// The boot chain (ROM + trusted key + ROM self-measurement).
    pub chain: BootChain,
    /// A/B/golden firmware store, slot A = golden v1.
    pub slots: SlotStore,
    /// The update engine.
    pub update: UpdateEngine,
    /// The provisioned TEE with keystore TA and device keys.
    pub tee: Tee,
    /// HKDF-derived evidence-chain key (lives in SSM-private memory).
    pub evidence_key: Vec<u8>,
    /// The device root key (fused; used to derive everything else).
    pub device_root_key: Vec<u8>,
    /// The bootloader image bytes.
    pub bootloader: Vec<u8>,
}

/// Provisions a device from the configuration.
///
/// # Panics
///
/// Panics only on internal invariant violations (key generation from a
/// DRBG cannot practically fail).
pub fn provision(config: &PlatformConfig) -> Provisioned {
    let seed_bytes = config.seed.to_le_bytes();
    let mut key_drbg = HmacDrbg::new(&seed_bytes, b"vendor-keygen");
    let vendor = generate_keypair(config.rsa_bits, &mut key_drbg).expect("keygen");
    let signer = ImageSigner::new(&vendor);

    // Device root key and derived keys.
    let mut root_drbg = HmacDrbg::new(&seed_bytes, b"device-root");
    let device_root_key = root_drbg.generate(32);
    let evidence_key = hkdf::derive(b"cres", &device_root_key, b"evidence-chain", 32);
    let storage_key = hkdf::derive(b"cres", &device_root_key, b"tee-storage", 32);

    // Firmware: bootloader v1 and application v1 (security version 1).
    let bootloader = signer
        .sign("bootloader", 1, 1, b"CRES bootloader v1")
        .to_bytes();
    let app_v1 = signer
        .sign("app", 1, 1, b"CRES application firmware v1")
        .to_bytes();

    let rom_measurement = Sha256::digest(b"CRES boot ROM v1");
    let policy = BootPolicy::default();
    let rom = BootRom::new(vendor.public.fingerprint(), policy);
    let chain = BootChain::new(rom, vendor.public.clone(), rom_measurement);

    let slots = SlotStore::new(app_v1);
    let update = UpdateEngine::new(vendor.public.modulus_len(), 3);

    // TEE: install the keystore TA and store device keys.
    let ta_signer = TaSigner::new(&vendor);
    let mut tee = Tee::new(config.tee_deployment(), vendor.public.clone(), true);
    tee.install_ta(ta_signer.sign("keystore", 2, b"keystore TA v2"))
        .expect("keystore TA installs");
    tee.install_ta(ta_signer.sign("attestation", 1, b"attestation TA v1"))
        .expect("attestation TA installs");
    let session = tee.open_session("keystore").expect("session");
    tee.store_key(session, "device-root", &device_root_key)
        .expect("store root");
    tee.store_key(session, "storage", &storage_key)
        .expect("store storage");
    tee.close_session(session);

    Provisioned {
        vendor,
        signer,
        chain,
        slots,
        update,
        tee,
        evidence_key,
        device_root_key,
        bootloader,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformProfile;
    use cres_boot::{FirmwareImage, MemArbCounters};

    fn cfg() -> PlatformConfig {
        PlatformConfig::new(PlatformProfile::CyberResilient, 1234)
    }

    #[test]
    fn provisioning_is_deterministic() {
        let a = provision(&cfg());
        let b = provision(&cfg());
        assert_eq!(a.vendor, b.vendor);
        assert_eq!(a.evidence_key, b.evidence_key);
        assert_eq!(a.slots.active_bytes(), b.slots.active_bytes());
    }

    #[test]
    fn different_seeds_different_devices() {
        let a = provision(&cfg());
        let b = provision(&PlatformConfig::new(PlatformProfile::CyberResilient, 99));
        assert_ne!(a.evidence_key, b.evidence_key);
        assert_ne!(a.vendor.public.fingerprint(), b.vendor.public.fingerprint());
    }

    #[test]
    fn provisioned_device_boots() {
        let p = provision(&cfg());
        let sig_len = p.vendor.public.modulus_len();
        let bl = FirmwareImage::from_bytes(&p.bootloader, sig_len).unwrap();
        let app = FirmwareImage::from_bytes(p.slots.active_bytes(), sig_len).unwrap();
        let mut arb = MemArbCounters::new();
        let report = p.chain.boot(&[&bl, &app], &mut arb);
        assert!(report.booted(), "{:?}", report.outcome);
    }

    #[test]
    fn derived_keys_are_distinct() {
        let p = provision(&cfg());
        assert_ne!(p.evidence_key, p.device_root_key);
        assert_eq!(p.evidence_key.len(), 32);
    }

    #[test]
    fn tee_holds_device_keys() {
        let p = provision(&cfg());
        let key = p
            .tee
            .export_key(cres_tee::World::Secure, "device-root")
            .unwrap();
        assert_eq!(key, p.device_root_key);
        assert_eq!(p.tee.installed_version("keystore"), Some(2));
        assert_eq!(p.tee.installed_version("attestation"), Some(1));
    }
}
