//! The parallel campaign engine: fan independent `(config, scenario)`
//! simulations out across a worker pool.
//!
//! Every experiment that sweeps `(profile, seed, scenario)` cells runs
//! fully independent simulations — each builds its own
//! [`crate::platform::Platform`] and consumes its own [`Scenario`] — so
//! wall-clock should scale with cores,
//! not with the number of cells. The sim kernel stays single-threaded *per
//! run*; parallelism is strictly *across* runs, which is why parallel
//! output is bit-identical to the sequential path (proved by
//! `tests/campaign_determinism.rs`).
//!
//! [`Scenario`] itself holds `Box<dyn AttackInjector>` state and cannot be
//! built ahead of time and shipped to a worker, so jobs carry a
//! [`ScenarioSpec`] — duration, workload knobs and *named* attacks with
//! their timing — and each worker materialises the concrete scenario
//! locally through the campaign's injector builder (the experiment
//! binaries pass `cres_attacks::catalog::try_build`). Resolution is
//! fallible: every spec is validated against the builder *before* any
//! worker spawns, so an unknown attack name is a structured
//! [`CampaignError`] naming the job and the offending attack, never a
//! worker-thread panic.
//!
//! ```
//! use cres_platform::campaign::{Campaign, ScenarioSpec};
//! use cres_platform::config::{PlatformConfig, PlatformProfile};
//! use cres_sim::{SimDuration, SimTime};
//!
//! let mut campaign = Campaign::new(cres_attacks::catalog::try_build);
//! for seed in [1, 2] {
//!     campaign.submit(
//!         format!("flood/{seed}"),
//!         PlatformConfig::new(PlatformProfile::CyberResilient, seed),
//!         ScenarioSpec::quiet(SimDuration::cycles(200_000)).attack(
//!             "network-flood",
//!             SimTime::at_cycle(50_000),
//!             SimDuration::cycles(3_000),
//!         ),
//!     );
//! }
//! let summary = campaign.run_parallel(2).expect("catalog names resolve");
//! assert_eq!(summary.results.len(), 2);
//! assert!(summary.results.iter().all(|r| r.report.attacks[0].detected()));
//! ```

use crate::config::PlatformConfig;
use crate::metrics::RunReport;
use crate::pool::PlatformPool;
use crate::runner::{Scenario, ScenarioRunner};
use crate::telemetry::TelemetrySnapshot;
use cres_attacks::{AttackInjector, UnknownAttack};
use cres_sim::{SimDuration, SimTime};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A campaign failed before any simulation ran: a queued job's spec
/// referenced an attack name the injector builder cannot resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError {
    /// Label of the offending job.
    pub label: String,
    /// Submission index of the offending job.
    pub index: usize,
    /// The unresolvable attack name.
    pub unknown: UnknownAttack,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job #{} ({:?}): {}",
            self.index, self.label, self.unknown
        )
    }
}

impl std::error::Error for CampaignError {}

/// A named attack plus its schedule, materialised per worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackTemplate {
    /// Injector name, resolved through the campaign's builder.
    pub name: String,
    /// When the first step fires.
    pub start: SimTime,
    /// Interval between steps.
    pub step_interval: SimDuration,
}

/// The result of resolving one attack name: a live injector, or a
/// structured [`UnknownAttack`] naming the string that failed to resolve.
pub type BuiltAttack = Result<Box<dyn AttackInjector>, UnknownAttack>;

/// A buildable description of a [`Scenario`]: everything `Scenario` holds
/// except live injector state, so it is `Clone + Send` and can cross into
/// a worker thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Named attacks to schedule.
    pub attacks: Vec<AttackTemplate>,
    /// Period of benign background traffic (None = no traffic).
    pub benign_packet_period: Option<SimDuration>,
    /// Pre-deployment syscall-model training rounds.
    pub training_rounds: u32,
    /// Install the default three-task workload.
    pub default_workload: bool,
}

impl ScenarioSpec {
    /// An attack-free spec with [`Scenario::quiet`]'s defaults.
    pub fn quiet(duration: SimDuration) -> Self {
        let quiet = Scenario::quiet(duration);
        ScenarioSpec {
            duration,
            attacks: Vec::new(),
            benign_packet_period: quiet.benign_packet_period,
            training_rounds: quiet.training_rounds,
            default_workload: quiet.default_workload,
        }
    }

    /// Adds a named attack starting at `start` with one step per
    /// `step_interval`.
    pub fn attack(
        mut self,
        name: impl Into<String>,
        start: SimTime,
        step_interval: SimDuration,
    ) -> Self {
        self.attacks.push(AttackTemplate {
            name: name.into(),
            start,
            step_interval,
        });
        self
    }

    /// Builds the concrete runnable scenario, resolving attack names
    /// through `build`.
    ///
    /// Fails with the offending name when `build` cannot resolve one of
    /// the spec's attacks.
    pub fn materialise(
        &self,
        build: &dyn Fn(&str) -> BuiltAttack,
    ) -> Result<Scenario, UnknownAttack> {
        let mut scenario = Scenario {
            duration: self.duration,
            attacks: Vec::new(),
            benign_packet_period: self.benign_packet_period,
            training_rounds: self.training_rounds,
            default_workload: self.default_workload,
        };
        for template in &self.attacks {
            scenario = scenario.attack(
                template.start,
                template.step_interval,
                build(&template.name)?,
            );
        }
        Ok(scenario)
    }
}

/// One campaign cell: a platform configuration plus the scenario to run on
/// it.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display label for timing output (e.g. `"code-injection/cres/42"`).
    pub label: String,
    /// Full platform configuration (profile, seed and ablation knobs).
    pub config: PlatformConfig,
    /// The scenario description.
    pub spec: ScenarioSpec,
}

/// A completed job: the report plus how long the run took on its worker.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's label.
    pub label: String,
    /// The scored run.
    pub report: RunReport,
    /// Wall-clock time this single run took.
    pub wall: Duration,
}

/// All results of a campaign, in submission order, with timing aggregates.
#[derive(Debug)]
pub struct CampaignSummary {
    /// Per-job results, index-aligned with submission order.
    pub results: Vec<JobResult>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time for the whole campaign.
    pub total_wall: Duration,
}

impl CampaignSummary {
    /// Sum of per-job wall times: what a sequential loop would have cost.
    pub fn sequential_equivalent(&self) -> Duration {
        self.results.iter().map(|r| r.wall).sum()
    }

    /// Aggregate speedup over the sequential-equivalent cost.
    pub fn speedup(&self) -> f64 {
        let total = self.total_wall.as_secs_f64();
        if total <= 0.0 {
            return 1.0;
        }
        self.sequential_equivalent().as_secs_f64() / total
    }

    /// Folds every job's telemetry snapshot into one campaign-wide
    /// aggregate, **in submission order** — so the result is identical
    /// whether the campaign ran sequentially or on any number of threads.
    /// `None` when no job carried telemetry.
    pub fn merged_telemetry(&self) -> Option<TelemetrySnapshot> {
        let mut merged: Option<TelemetrySnapshot> = None;
        for result in &self.results {
            let Some(snapshot) = &result.report.telemetry else {
                continue;
            };
            match merged.as_mut() {
                Some(acc) => acc.merge(snapshot),
                None => {
                    let mut first = snapshot.clone();
                    // a merged aggregate never keeps a single run's tail
                    first.trace_tail.clear();
                    merged = Some(first);
                }
            }
        }
        merged
    }

    /// Prints per-run wall times plus the aggregate line the BENCH
    /// trajectory records.
    pub fn print_timing(&self, id: &str) {
        println!(
            "\n[{id}] campaign timing ({} jobs on {} threads):",
            self.results.len(),
            self.threads
        );
        for result in &self.results {
            println!(
                "  {:<40} {:>9.1} ms",
                result.label,
                result.wall.as_secs_f64() * 1e3
            );
        }
        self.print_aggregate(id);
    }

    /// Prints only the aggregate speedup line.
    pub fn print_aggregate(&self, id: &str) {
        println!(
            "[{id}] {} jobs on {} threads: wall {:.2}s, sequential-equivalent {:.2}s, speedup {:.2}x",
            self.results.len(),
            self.threads,
            self.total_wall.as_secs_f64(),
            self.sequential_equivalent().as_secs_f64(),
            self.speedup(),
        );
    }
}

/// A batch of independent scenario runs plus the injector builder that
/// materialises named attacks inside each worker.
pub struct Campaign<B>
where
    B: Fn(&str) -> BuiltAttack + Sync,
{
    builder: B,
    jobs: Vec<Job>,
}

impl<B> Campaign<B>
where
    B: Fn(&str) -> BuiltAttack + Sync,
{
    /// Creates an empty campaign over an injector builder.
    pub fn new(builder: B) -> Self {
        Campaign {
            builder,
            jobs: Vec::new(),
        }
    }

    /// Queues a job; returns its index (results come back in submission
    /// order, so the index addresses the matching [`JobResult`]).
    pub fn submit(
        &mut self,
        label: impl Into<String>,
        config: PlatformConfig,
        spec: ScenarioSpec,
    ) -> usize {
        self.jobs.push(Job {
            label: label.into(),
            config,
            spec,
        });
        self.jobs.len() - 1
    }

    /// Queued job count.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Checks every queued spec against the builder, reporting the first
    /// job whose attacks do not all resolve. Runs on the calling thread so
    /// a bad scenario never reaches a worker.
    fn validate(&self) -> Result<(), CampaignError> {
        for (index, job) in self.jobs.iter().enumerate() {
            if let Err(unknown) = job.spec.materialise(&|name| (self.builder)(name)) {
                return Err(CampaignError {
                    label: job.label.clone(),
                    index,
                    unknown,
                });
            }
        }
        Ok(())
    }

    /// Runs every job on the calling thread, in submission order.
    ///
    /// Fails up front — before any simulation runs — when a queued spec
    /// references an attack the builder cannot resolve.
    pub fn run_sequential(self) -> Result<CampaignSummary, CampaignError> {
        self.validate()?;
        let start = Instant::now();
        let mut pool = PlatformPool::new();
        let results = self
            .jobs
            .iter()
            .map(|job| run_job(job, &self.builder, &mut pool))
            .collect();
        Ok(CampaignSummary {
            results,
            threads: 1,
            total_wall: start.elapsed(),
        })
    }

    /// Fans the jobs out across `threads` scoped workers.
    ///
    /// Work-stealing is a shared atomic cursor over the job list: each
    /// worker claims the next unclaimed index until the list is drained, so
    /// a slow cell never idles the other workers. Results are written back
    /// into submission-order slots, making the output independent of
    /// completion order — byte-identical to [`Campaign::run_sequential`].
    ///
    /// Fails up front — before any worker spawns — when a queued spec
    /// references an attack the builder cannot resolve.
    pub fn run_parallel(self, threads: usize) -> Result<CampaignSummary, CampaignError> {
        let threads = threads.max(1).min(self.jobs.len().max(1));
        if threads <= 1 {
            return self.run_sequential();
        }
        self.validate()?;
        let start = Instant::now();
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<JobResult>>> =
            self.jobs.iter().map(|_| Mutex::new(None)).collect();
        let jobs = &self.jobs;
        let builder = &self.builder;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // One pool per worker: provisioning cache and recycled
                    // platform stay thread-local, so no locking on the hot
                    // path.
                    let mut pool = PlatformPool::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(index) else { break };
                        let result = run_job(job, builder, &mut pool);
                        *slots[index].lock().expect("campaign slot poisoned") = Some(result);
                    }
                });
            }
        });
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("campaign slot poisoned")
                    .expect("worker pool drained every job")
            })
            .collect();
        Ok(CampaignSummary {
            results,
            threads,
            total_wall: start.elapsed(),
        })
    }
}

fn run_job<B>(job: &Job, builder: &B, pool: &mut PlatformPool) -> JobResult
where
    B: Fn(&str) -> BuiltAttack + Sync,
{
    let start = Instant::now();
    let scenario = job
        .spec
        .materialise(&|name| builder(name))
        .expect("specs validated before dispatch");
    let report = ScenarioRunner::new(job.config).run_pooled(pool, scenario);
    JobResult {
        label: job.label.clone(),
        report,
        wall: start.elapsed(),
    }
}

/// Parses the `CRES_JOBS` override. Returns `Ok(None)` when the variable is
/// unset, `Ok(Some(n))` for a positive integer, and `Err` (with a
/// user-facing message) for anything else — `0`, garbage, or empty.
pub fn jobs_from_env() -> Result<Option<usize>, String> {
    match std::env::var("CRES_JOBS") {
        Err(_) => Ok(None),
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            Ok(_) => Err(format!(
                "invalid CRES_JOBS={value:?}: job count must be at least 1"
            )),
            Err(_) => Err(format!(
                "invalid CRES_JOBS={value:?}: expected a positive integer"
            )),
        },
    }
}

/// Worker count for experiment sweeps: `CRES_JOBS` when set, otherwise the
/// machine's available parallelism. A malformed or zero `CRES_JOBS` is a
/// hard error (exit code 2), not a silent fallback — a determinism matrix
/// that quietly ran on the wrong thread count would prove nothing.
pub fn default_jobs() -> usize {
    match jobs_from_env() {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformProfile;
    use cres_attacks::{NetworkFloodAttack, SensorSpoofAttack};
    use cres_soc::periph::SensorSpoof;

    fn test_builder(name: &str) -> BuiltAttack {
        Ok(match name {
            "network-flood" => Box::new(NetworkFloodAttack::new(300, 4)) as _,
            "sensor-spoof" => Box::new(SensorSpoofAttack::new(0, SensorSpoof::Fixed(61.5))) as _,
            other => {
                return Err(UnknownAttack {
                    name: other.to_string(),
                })
            }
        })
    }

    type TestBuilder = fn(&str) -> BuiltAttack;

    fn small_campaign() -> Campaign<TestBuilder> {
        let mut campaign = Campaign::new(test_builder as TestBuilder);
        for (index, seed) in [3u64, 4, 5, 6].into_iter().enumerate() {
            let spec = if index % 2 == 0 {
                ScenarioSpec::quiet(SimDuration::cycles(150_000)).attack(
                    "network-flood",
                    SimTime::at_cycle(40_000),
                    SimDuration::cycles(2_000),
                )
            } else {
                ScenarioSpec::quiet(SimDuration::cycles(150_000))
            };
            campaign.submit(
                format!("job/{seed}"),
                PlatformConfig::new(PlatformProfile::CyberResilient, seed),
                spec,
            );
        }
        campaign
    }

    #[test]
    fn parallel_matches_sequential_in_submission_order() {
        let sequential = small_campaign().run_sequential().expect("known attacks");
        let parallel = small_campaign().run_parallel(4).expect("known attacks");
        assert_eq!(sequential.results.len(), parallel.results.len());
        for (a, b) in sequential.results.iter().zip(&parallel.results) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.report, b.report, "parallel diverged for {}", a.label);
        }
    }

    #[test]
    fn merged_telemetry_is_thread_count_invariant() {
        let sequential = small_campaign()
            .run_sequential()
            .expect("known attacks")
            .merged_telemetry();
        let parallel = small_campaign()
            .run_parallel(4)
            .expect("known attacks")
            .merged_telemetry();
        assert_eq!(sequential, parallel);
        let merged = sequential.expect("telemetry is on by default");
        assert!(merged.spans_recorded > 0);
        assert!(merged.trace_tail.is_empty());
    }

    #[test]
    fn spec_materialises_the_same_scenario_shape() {
        let spec = ScenarioSpec::quiet(SimDuration::cycles(100_000)).attack(
            "sensor-spoof",
            SimTime::at_cycle(10_000),
            SimDuration::cycles(1_000),
        );
        let scenario = spec.materialise(&test_builder).expect("known attack");
        assert_eq!(scenario.duration, spec.duration);
        assert_eq!(scenario.attacks.len(), 1);
        assert_eq!(scenario.attacks[0].start, SimTime::at_cycle(10_000));
        assert_eq!(scenario.attacks[0].injector.name(), "sensor-spoof");
        let quiet = Scenario::quiet(SimDuration::cycles(100_000));
        assert_eq!(scenario.benign_packet_period, quiet.benign_packet_period);
        assert_eq!(scenario.training_rounds, quiet.training_rounds);
        assert_eq!(scenario.default_workload, quiet.default_workload);
    }

    #[test]
    fn summary_speedup_uses_sequential_equivalent() {
        let summary = CampaignSummary {
            results: vec![
                JobResult {
                    label: "a".into(),
                    report: dummy_report(),
                    wall: Duration::from_millis(30),
                },
                JobResult {
                    label: "b".into(),
                    report: dummy_report(),
                    wall: Duration::from_millis(30),
                },
            ],
            threads: 2,
            total_wall: Duration::from_millis(30),
        };
        assert_eq!(summary.sequential_equivalent(), Duration::from_millis(60));
        assert!((summary.speedup() - 2.0).abs() < 1e-9);
    }

    fn dummy_report() -> RunReport {
        ScenarioRunner::new(PlatformConfig::new(PlatformProfile::PassiveTrust, 1))
            .run(Scenario::quiet(SimDuration::cycles(5_000)))
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let summary = small_campaign().run_parallel(0).expect("known attacks");
        assert_eq!(summary.results.len(), 4);
        assert_eq!(summary.threads, 1);
    }

    #[test]
    fn unknown_attack_is_a_structured_error_not_a_panic() {
        let mut campaign = Campaign::new(test_builder as TestBuilder);
        campaign.submit(
            "good",
            PlatformConfig::new(PlatformProfile::CyberResilient, 1),
            ScenarioSpec::quiet(SimDuration::cycles(50_000)).attack(
                "network-flood",
                SimTime::at_cycle(10_000),
                SimDuration::cycles(1_000),
            ),
        );
        campaign.submit(
            "bad",
            PlatformConfig::new(PlatformProfile::CyberResilient, 2),
            ScenarioSpec::quiet(SimDuration::cycles(50_000)).attack(
                "zero-day",
                SimTime::at_cycle(10_000),
                SimDuration::cycles(1_000),
            ),
        );
        let err = campaign.run_parallel(4).expect_err("bad name must surface");
        assert_eq!(err.index, 1);
        assert_eq!(err.label, "bad");
        assert_eq!(err.unknown.name, "zero-day");
        assert!(err.to_string().contains("zero-day"), "{err}");
    }
}
