//! Hand-rolled JSON encoding/decoding for [`RunReport`].
//!
//! The workspace's `serde` is an offline marker shim (see
//! `crates/shim-serde`), so real serialization lives here: a small writer
//! plus a recursive-descent parser covering exactly the JSON subset the
//! report schema emits. Round-tripping is lossless — integers are kept as
//! text until typed extraction (no `f64` detour for `u64` fields) and
//! floats are written with Rust's shortest round-trip formatting.

use crate::config::PlatformProfile;
use crate::faultplane::FaultPlaneStats;
use crate::metrics::{AttackOutcomeReport, RunReport};
use crate::pool::PoolStats;
use crate::telemetry::{HistogramSnapshot, StageStat, TelemetrySnapshot, TraceSpan};
use cres_attacks::AttackKind;
use cres_response::AvailabilityReport;
use cres_sim::{SimTime, Stage};
use cres_ssm::{DegradationTier, HealthState};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A decode failure: what went wrong and roughly where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

type Result<T> = std::result::Result<T, JsonError>;

fn err<T>(message: impl Into<String>) -> Result<T> {
    Err(JsonError(message.into()))
}

// ---------------------------------------------------------------- values

/// Parsed JSON. Numbers stay textual so integer extraction is exact.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Number(String),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&b) => Ok(b),
            None => err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        let got = self.peek()?;
        if got != byte {
            return err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return err(format!("empty number at byte {start}"));
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        // validate now so extraction can't fail on garbage like "1.2.3"
        if text.parse::<f64>().is_err() {
            return err(format!("malformed number {text:?} at byte {start}"));
        }
        Ok(Value::Number(text.to_string()))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError(format!("bad \\u escape {hex:?}")))?;
                            self.pos += 4;
                            // the writer never emits surrogate pairs (it only
                            // escapes control chars), so reject them here
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return err(format!("unsupported code point {code:#x}")),
                            }
                        }
                        other => return err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // copy the full UTF-8 sequence starting at b
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    let Some(chunk) = self.bytes.get(start..start + len) else {
                        return err("truncated utf-8 sequence");
                    };
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| JsonError("invalid utf-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return err(format!("expected ',' or ']', found {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return err(format!("expected ',' or '}}', found {:?}", other as char)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse(text: &str) -> Result<Value> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return err(format!("trailing input at byte {}", parser.pos));
    }
    Ok(value)
}

// ---------------------------------------------------------------- writer

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `f64` with Rust's shortest round-trip formatting, made self-describing:
/// integral values gain a `.0` so the reader can tell floats from ints.
fn write_f64(out: &mut String, v: f64) {
    let text = format!("{v}");
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E', 'n', 'i']) {
        out.push_str(".0");
    }
}

// ------------------------------------------------------------ extraction

fn as_object(value: &Value) -> Result<&BTreeMap<String, Value>> {
    match value {
        Value::Object(fields) => Ok(fields),
        other => err(format!("expected object, found {}", other.type_name())),
    }
}

fn field<'v>(fields: &'v BTreeMap<String, Value>, name: &str) -> Result<&'v Value> {
    fields
        .get(name)
        .ok_or_else(|| JsonError(format!("missing field {name:?}")))
}

fn get_u64(fields: &BTreeMap<String, Value>, name: &str) -> Result<u64> {
    match field(fields, name)? {
        Value::Number(text) => text
            .parse()
            .map_err(|_| JsonError(format!("field {name:?}: {text:?} is not a u64"))),
        other => err(format!(
            "field {name:?}: expected number, found {}",
            other.type_name()
        )),
    }
}

fn get_u32(fields: &BTreeMap<String, Value>, name: &str) -> Result<u32> {
    u32::try_from(get_u64(fields, name)?)
        .map_err(|_| JsonError(format!("field {name:?} out of u32 range")))
}

fn get_usize(fields: &BTreeMap<String, Value>, name: &str) -> Result<usize> {
    usize::try_from(get_u64(fields, name)?)
        .map_err(|_| JsonError(format!("field {name:?} out of usize range")))
}

fn get_f64(fields: &BTreeMap<String, Value>, name: &str) -> Result<f64> {
    match field(fields, name)? {
        Value::Number(text) => text
            .parse()
            .map_err(|_| JsonError(format!("field {name:?}: {text:?} is not a number"))),
        other => err(format!(
            "field {name:?}: expected number, found {}",
            other.type_name()
        )),
    }
}

fn get_bool(fields: &BTreeMap<String, Value>, name: &str) -> Result<bool> {
    match field(fields, name)? {
        Value::Bool(b) => Ok(*b),
        other => err(format!(
            "field {name:?}: expected bool, found {}",
            other.type_name()
        )),
    }
}

fn get_str<'v>(fields: &'v BTreeMap<String, Value>, name: &str) -> Result<&'v str> {
    match field(fields, name)? {
        Value::String(s) => Ok(s),
        other => err(format!(
            "field {name:?}: expected string, found {}",
            other.type_name()
        )),
    }
}

fn get_opt_u64(fields: &BTreeMap<String, Value>, name: &str) -> Result<Option<u64>> {
    match field(fields, name)? {
        Value::Null => Ok(None),
        Value::Number(text) => text
            .parse()
            .map(Some)
            .map_err(|_| JsonError(format!("field {name:?}: {text:?} is not a u64"))),
        other => err(format!(
            "field {name:?}: expected number or null, found {}",
            other.type_name()
        )),
    }
}

// ----------------------------------------------------------- enum names

fn profile_name(profile: PlatformProfile) -> &'static str {
    match profile {
        PlatformProfile::CyberResilient => "CyberResilient",
        PlatformProfile::PassiveTrust => "PassiveTrust",
        PlatformProfile::TeeShared => "TeeShared",
    }
}

fn profile_from(name: &str) -> Result<PlatformProfile> {
    Ok(match name {
        "CyberResilient" => PlatformProfile::CyberResilient,
        "PassiveTrust" => PlatformProfile::PassiveTrust,
        "TeeShared" => PlatformProfile::TeeShared,
        other => return err(format!("unknown profile {other:?}")),
    })
}

fn health_name(health: HealthState) -> &'static str {
    match health {
        HealthState::Healthy => "Healthy",
        HealthState::Suspicious => "Suspicious",
        HealthState::Compromised => "Compromised",
        HealthState::Degraded => "Degraded",
        HealthState::Recovering => "Recovering",
    }
}

fn health_from(name: &str) -> Result<HealthState> {
    Ok(match name {
        "Healthy" => HealthState::Healthy,
        "Suspicious" => HealthState::Suspicious,
        "Compromised" => HealthState::Compromised,
        "Degraded" => HealthState::Degraded,
        "Recovering" => HealthState::Recovering,
        other => return err(format!("unknown health state {other:?}")),
    })
}

fn attack_kind_from(name: &str) -> Result<AttackKind> {
    AttackKind::ALL
        .into_iter()
        .find(|kind| kind.to_string() == name)
        .map_or_else(|| err(format!("unknown attack kind {name:?}")), Ok)
}

fn get_u64_array(fields: &BTreeMap<String, Value>, name: &str) -> Result<Vec<u64>> {
    match field(fields, name)? {
        Value::Array(items) => items
            .iter()
            .map(|item| match item {
                Value::Number(text) => text
                    .parse()
                    .map_err(|_| JsonError(format!("field {name:?}: {text:?} is not a u64"))),
                other => err(format!(
                    "field {name:?}: expected number, found {}",
                    other.type_name()
                )),
            })
            .collect(),
        other => err(format!(
            "field {name:?}: expected array, found {}",
            other.type_name()
        )),
    }
}

fn stage_from(name: &str) -> Result<Stage> {
    Stage::from_name(name).map_or_else(|| err(format!("unknown stage {name:?}")), Ok)
}

fn tier_from(name: &str) -> Result<DegradationTier> {
    DegradationTier::from_name(name).map_or_else(|| err(format!("unknown tier {name:?}")), Ok)
}

// [`AvailabilityReport`] is foreign to this crate (it lives in
// `cres-response`), so its codec is a pair of free functions rather than
// an inherent impl.
fn write_availability(out: &mut String, report: &AvailabilityReport) {
    let _ = write!(
        out,
        "{{\"critical_offered\":{},\"critical_delivered\":{},\"noncritical_offered\":{},\
         \"noncritical_delivered\":{},\"tier_raises\":{},\"tier_lowers\":{},\
         \"final_tier\":\"{}\",\"peak_tier\":\"{}\",\"time_in_tier\":[{},{},{},{}],\
         \"breaker_trips\":{},\"breaker_resets\":{},\"actions_suppressed\":{}}}",
        report.critical_offered,
        report.critical_delivered,
        report.noncritical_offered,
        report.noncritical_delivered,
        report.tier_raises,
        report.tier_lowers,
        report.final_tier.name(),
        report.peak_tier.name(),
        report.time_in_tier[0],
        report.time_in_tier[1],
        report.time_in_tier[2],
        report.time_in_tier[3],
        report.breaker_trips,
        report.breaker_resets,
        report.actions_suppressed
    );
}

fn availability_from_value(value: &Value) -> Result<AvailabilityReport> {
    let fields = as_object(value)?;
    let time_in_tier: [u64; 4] = get_u64_array(fields, "time_in_tier")?
        .try_into()
        .map_err(|_| JsonError("field \"time_in_tier\": expected 4 entries".into()))?;
    Ok(AvailabilityReport {
        critical_offered: get_u64(fields, "critical_offered")?,
        critical_delivered: get_u64(fields, "critical_delivered")?,
        noncritical_offered: get_u64(fields, "noncritical_offered")?,
        noncritical_delivered: get_u64(fields, "noncritical_delivered")?,
        tier_raises: get_u32(fields, "tier_raises")?,
        tier_lowers: get_u32(fields, "tier_lowers")?,
        final_tier: tier_from(get_str(fields, "final_tier")?)?,
        peak_tier: tier_from(get_str(fields, "peak_tier")?)?,
        time_in_tier,
        breaker_trips: get_u32(fields, "breaker_trips")?,
        breaker_resets: get_u32(fields, "breaker_resets")?,
        actions_suppressed: get_u32(fields, "actions_suppressed")?,
    })
}

// ------------------------------------------------------------- encoding

impl AttackOutcomeReport {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        write_string(out, &self.name);
        let _ = write!(out, ",\"kind\":\"{}\"", self.kind);
        match self.first_injection {
            Some(t) => {
                let _ = write!(out, ",\"first_injection\":{}", t.cycle());
            }
            None => out.push_str(",\"first_injection\":null"),
        }
        match self.detected_at {
            Some(t) => {
                let _ = write!(out, ",\"detected_at\":{}", t.cycle());
            }
            None => out.push_str(",\"detected_at\":null"),
        }
        match self.detection_latency {
            Some(l) => {
                let _ = write!(out, ",\"detection_latency\":{l}");
            }
            None => out.push_str(",\"detection_latency\":null"),
        }
        let _ = write!(
            out,
            ",\"matching_incidents\":{},\"steps_achieved\":{},\"steps_executed\":{}}}",
            self.matching_incidents, self.steps_achieved, self.steps_executed
        );
    }

    fn from_value(value: &Value) -> Result<Self> {
        let fields = as_object(value)?;
        Ok(AttackOutcomeReport {
            name: get_str(fields, "name")?.to_string(),
            kind: attack_kind_from(get_str(fields, "kind")?)?,
            first_injection: get_opt_u64(fields, "first_injection")?.map(SimTime::at_cycle),
            detected_at: get_opt_u64(fields, "detected_at")?.map(SimTime::at_cycle),
            detection_latency: get_opt_u64(fields, "detection_latency")?,
            matching_incidents: get_u32(fields, "matching_incidents")?,
            steps_achieved: get_u32(fields, "steps_achieved")?,
            steps_executed: get_u32(fields, "steps_executed")?,
        })
    }
}

impl TelemetrySnapshot {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"spans_recorded\":{},\"spans_dropped\":{},\"ring_capacity\":{},\
             \"ring_occupancy\":{},\"span_cost\":{},\"instrumentation_cycles\":{}",
            self.spans_recorded,
            self.spans_dropped,
            self.ring_capacity,
            self.ring_occupancy,
            self.span_cost,
            self.instrumentation_cycles
        );
        out.push_str(",\"stages\":[");
        for (index, stage) in self.stages.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"count\":{},\"cycles\":{}}}",
                stage.stage.name(),
                stage.count,
                stage.cycles
            );
        }
        out.push_str("],\"counters\":{");
        for (index, (name, value)) in self.counters.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            write_string(out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (index, (name, value)) in self.gauges.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            write_string(out, name);
            out.push(':');
            write_f64(out, *value);
        }
        out.push_str("},\"histograms\":[");
        for (index, hist) in self.histograms.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_string(out, &hist.name);
            out.push_str(",\"bounds\":[");
            for (i, b) in hist.bounds.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("],\"counts\":[");
            for (i, c) in hist.counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"total\":{},\"sum\":{}}}", hist.total, hist.sum);
        }
        out.push_str("],\"trace_tail\":[");
        for (index, span) in self.trace_tail.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at\":{},\"stage\":\"{}\",\"arg\":{},\"cycles\":{}}}",
                span.at.cycle(),
                span.stage.name(),
                span.arg,
                span.cycles
            );
        }
        out.push_str("]}");
    }

    /// Encodes the snapshot as a single-line JSON object (the value of the
    /// `telemetry` field in the [`RunReport`] schema — see `EXPERIMENTS.md`
    /// E8 for the field-by-field documentation).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        self.write_json(&mut out);
        out
    }

    fn from_value(value: &Value) -> Result<Self> {
        let fields = as_object(value)?;
        let stages = match field(fields, "stages")? {
            Value::Array(items) => items
                .iter()
                .map(|item| {
                    let f = as_object(item)?;
                    Ok(StageStat {
                        stage: stage_from(get_str(f, "stage")?)?,
                        count: get_u64(f, "count")?,
                        cycles: get_u64(f, "cycles")?,
                    })
                })
                .collect::<Result<Vec<_>>>()?,
            other => {
                return err(format!(
                    "field \"stages\": expected array, found {}",
                    other.type_name()
                ))
            }
        };
        let counters = match field(fields, "counters")? {
            Value::Object(entries) => entries
                .iter()
                .map(|(name, value)| match value {
                    Value::Number(text) => text
                        .parse()
                        .map(|v| (name.clone(), v))
                        .map_err(|_| JsonError(format!("counter {name:?}: {text:?} is not a u64"))),
                    other => err(format!(
                        "counter {name:?}: expected number, found {}",
                        other.type_name()
                    )),
                })
                .collect::<Result<Vec<_>>>()?,
            other => {
                return err(format!(
                    "field \"counters\": expected object, found {}",
                    other.type_name()
                ))
            }
        };
        let gauges = match field(fields, "gauges")? {
            Value::Object(entries) => entries
                .iter()
                .map(|(name, value)| match value {
                    Value::Number(text) => text.parse().map(|v| (name.clone(), v)).map_err(|_| {
                        JsonError(format!("gauge {name:?}: {text:?} is not a number"))
                    }),
                    other => err(format!(
                        "gauge {name:?}: expected number, found {}",
                        other.type_name()
                    )),
                })
                .collect::<Result<Vec<_>>>()?,
            other => {
                return err(format!(
                    "field \"gauges\": expected object, found {}",
                    other.type_name()
                ))
            }
        };
        let histograms = match field(fields, "histograms")? {
            Value::Array(items) => items
                .iter()
                .map(|item| {
                    let f = as_object(item)?;
                    Ok(HistogramSnapshot {
                        name: get_str(f, "name")?.to_string(),
                        bounds: get_u64_array(f, "bounds")?,
                        counts: get_u64_array(f, "counts")?,
                        total: get_u64(f, "total")?,
                        sum: get_u64(f, "sum")?,
                    })
                })
                .collect::<Result<Vec<_>>>()?,
            other => {
                return err(format!(
                    "field \"histograms\": expected array, found {}",
                    other.type_name()
                ))
            }
        };
        let trace_tail = match field(fields, "trace_tail")? {
            Value::Array(items) => items
                .iter()
                .map(|item| {
                    let f = as_object(item)?;
                    Ok(TraceSpan {
                        at: SimTime::at_cycle(get_u64(f, "at")?),
                        stage: stage_from(get_str(f, "stage")?)?,
                        arg: get_u32(f, "arg")?,
                        cycles: get_u64(f, "cycles")?,
                    })
                })
                .collect::<Result<Vec<_>>>()?,
            other => {
                return err(format!(
                    "field \"trace_tail\": expected array, found {}",
                    other.type_name()
                ))
            }
        };
        Ok(TelemetrySnapshot {
            spans_recorded: get_u64(fields, "spans_recorded")?,
            spans_dropped: get_u64(fields, "spans_dropped")?,
            ring_capacity: get_usize(fields, "ring_capacity")?,
            ring_occupancy: get_usize(fields, "ring_occupancy")?,
            span_cost: get_u64(fields, "span_cost")?,
            instrumentation_cycles: get_u64(fields, "instrumentation_cycles")?,
            stages,
            counters,
            gauges,
            histograms,
            trace_tail,
        })
    }

    /// Decodes a snapshot written by [`TelemetrySnapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Self> {
        TelemetrySnapshot::from_value(&parse(text)?)
    }
}

impl FaultPlaneStats {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"events_lost\":{},\"events_delayed\":{},\"events_reordered\":{},\
             \"events_corrupted\":{},\"delivery_retries\":{},\"recovered_deliveries\":{},\
             \"backoff_cycles\":{},\"monitor_stalls\":{},\"monitors_crashed\":{},\
             \"monitors_quarantined\":{},\"response_drops\":{},\"response_retries\":{},\
             \"degraded_correlation\":{}}}",
            self.events_lost,
            self.events_delayed,
            self.events_reordered,
            self.events_corrupted,
            self.delivery_retries,
            self.recovered_deliveries,
            self.backoff_cycles,
            self.monitor_stalls,
            self.monitors_crashed,
            self.monitors_quarantined,
            self.response_drops,
            self.response_retries,
            self.degraded_correlation
        );
    }

    fn from_value(value: &Value) -> Result<Self> {
        let fields = as_object(value)?;
        Ok(FaultPlaneStats {
            events_lost: get_u64(fields, "events_lost")?,
            events_delayed: get_u64(fields, "events_delayed")?,
            events_reordered: get_u64(fields, "events_reordered")?,
            events_corrupted: get_u64(fields, "events_corrupted")?,
            delivery_retries: get_u64(fields, "delivery_retries")?,
            recovered_deliveries: get_u64(fields, "recovered_deliveries")?,
            backoff_cycles: get_u64(fields, "backoff_cycles")?,
            monitor_stalls: get_u64(fields, "monitor_stalls")?,
            monitors_crashed: get_u64(fields, "monitors_crashed")?,
            monitors_quarantined: get_u64(fields, "monitors_quarantined")?,
            response_drops: get_u64(fields, "response_drops")?,
            response_retries: get_u64(fields, "response_retries")?,
            degraded_correlation: get_bool(fields, "degraded_correlation")?,
        })
    }
}

impl RunReport {
    /// Encodes the report as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"profile\":\"{}\",\"seed\":{},\"duration_cycles\":{},\"boot_ok\":{}",
            profile_name(self.profile),
            self.seed,
            self.duration_cycles,
            self.boot_ok
        );
        out.push_str(",\"attacks\":[");
        for (index, attack) in self.attacks.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            attack.write_json(&mut out);
        }
        out.push(']');
        let _ = write!(
            out,
            ",\"total_events\":{},\"total_incidents\":{}",
            self.total_events, self.total_incidents
        );
        out.push_str(",\"availability\":");
        write_f64(&mut out, self.availability);
        let _ = write!(
            out,
            ",\"final_health\":\"{}\",\"critical_steps\":{},\"evidence_len\":{},\
             \"evidence_chain_ok\":{},\"evidence_seals\":{}",
            health_name(self.final_health),
            self.critical_steps,
            self.evidence_len,
            self.evidence_chain_ok,
            self.evidence_seals
        );
        out.push_str(",\"evidence_coverage\":");
        write_f64(&mut out, self.evidence_coverage);
        let _ = write!(
            out,
            ",\"console_lines\":{},\"monitor_overhead_cycles\":{},\"reboots\":{},\
             \"attacker_wins\":{}",
            self.console_lines, self.monitor_overhead_cycles, self.reboots, self.attacker_wins
        );
        out.push_str(",\"faultplane\":");
        match &self.faultplane {
            Some(stats) => stats.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push_str(",\"telemetry\":");
        match &self.telemetry {
            Some(snapshot) => snapshot.write_json(&mut out),
            None => out.push_str("null"),
        }
        // emitted only when present so policy-off reports stay
        // byte-identical to the pre-policy schema (and its goldens)
        if let Some(detail) = &self.availability_detail {
            out.push_str(",\"availability_detail\":");
            write_availability(&mut out, detail);
        }
        // same optional-field contract: absent unless the pool-stats audit
        // opted in, so default reports keep the pre-pool schema
        if let Some(pool) = &self.pool {
            let _ = write!(
                out,
                ",\"pool\":{{\"provision_hits\":{},\"provision_misses\":{},\
                 \"platform_recycles\":{}}}",
                pool.provision_hits, pool.provision_misses, pool.platform_recycles
            );
        }
        out.push('}');
        out
    }

    /// Decodes a report written by [`RunReport::to_json`].
    pub fn from_json(text: &str) -> Result<Self> {
        let value = parse(text)?;
        let fields = as_object(&value)?;
        let attacks = match field(fields, "attacks")? {
            Value::Array(items) => items
                .iter()
                .map(AttackOutcomeReport::from_value)
                .collect::<Result<Vec<_>>>()?,
            other => {
                return err(format!(
                    "field \"attacks\": expected array, found {}",
                    other.type_name()
                ))
            }
        };
        Ok(RunReport {
            profile: profile_from(get_str(fields, "profile")?)?,
            seed: get_u64(fields, "seed")?,
            duration_cycles: get_u64(fields, "duration_cycles")?,
            boot_ok: get_bool(fields, "boot_ok")?,
            attacks,
            total_events: get_u64(fields, "total_events")?,
            total_incidents: get_u64(fields, "total_incidents")?,
            availability: get_f64(fields, "availability")?,
            final_health: health_from(get_str(fields, "final_health")?)?,
            critical_steps: get_u64(fields, "critical_steps")?,
            evidence_len: get_usize(fields, "evidence_len")?,
            evidence_chain_ok: get_bool(fields, "evidence_chain_ok")?,
            evidence_seals: get_usize(fields, "evidence_seals")?,
            evidence_coverage: get_f64(fields, "evidence_coverage")?,
            console_lines: get_usize(fields, "console_lines")?,
            monitor_overhead_cycles: get_u64(fields, "monitor_overhead_cycles")?,
            reboots: get_u32(fields, "reboots")?,
            attacker_wins: get_u32(fields, "attacker_wins")?,
            telemetry: match field(fields, "telemetry")? {
                Value::Null => None,
                value => Some(TelemetrySnapshot::from_value(value)?),
            },
            faultplane: match field(fields, "faultplane")? {
                Value::Null => None,
                value => Some(FaultPlaneStats::from_value(value)?),
            },
            // optional (not just nullable): absent in pre-policy reports
            availability_detail: match fields.get("availability_detail") {
                None | Some(Value::Null) => None,
                Some(value) => Some(availability_from_value(value)?),
            },
            // optional: absent in pre-pool reports and whenever the audit
            // knob is off
            pool: match fields.get("pool") {
                None | Some(Value::Null) => None,
                Some(value) => {
                    let fields = as_object(value)?;
                    Some(PoolStats {
                        provision_hits: get_u64(fields, "provision_hits")?,
                        provision_misses: get_u64(fields, "provision_misses")?,
                        platform_recycles: get_u64(fields, "platform_recycles")?,
                    })
                }
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{TelemetryConfig, TelemetryRecorder};
    use cres_sim::StageSink;

    fn sample_telemetry() -> TelemetrySnapshot {
        let mut recorder = TelemetryRecorder::new(TelemetryConfig::default());
        recorder.record_span(SimTime::at_cycle(100), Stage::MonitorSample, 2, 4);
        recorder.record_span(SimTime::at_cycle(100), Stage::EventEmit, 3, 1);
        recorder.record_span(SimTime::at_cycle(105), Stage::Respond, 1, 12);
        recorder.metrics_mut().counter_add("incidents.DmaExfil", 3);
        recorder.metrics_mut().gauge_set("evidence_chain_len", 99.0);
        recorder
            .metrics_mut()
            .observe("detection_latency_cycles", 1_500);
        recorder.snapshot()
    }

    fn sample_report() -> RunReport {
        RunReport {
            profile: PlatformProfile::TeeShared,
            seed: u64::MAX - 7, // would be lossy through an f64 detour
            duration_cycles: 1_000_000,
            boot_ok: true,
            attacks: vec![
                AttackOutcomeReport {
                    name: "dma-exfil \"quoted\"\nline".into(),
                    kind: AttackKind::DmaExfil,
                    first_injection: Some(SimTime::at_cycle(200_000)),
                    detected_at: Some(SimTime::at_cycle(201_500)),
                    detection_latency: Some(1_500),
                    matching_incidents: 3,
                    steps_achieved: 1,
                    steps_executed: 9,
                },
                AttackOutcomeReport {
                    name: "log-wipe".into(),
                    kind: AttackKind::LogWipe,
                    first_injection: None,
                    detected_at: None,
                    detection_latency: None,
                    matching_incidents: 0,
                    steps_achieved: 0,
                    steps_executed: 0,
                },
            ],
            total_events: 421,
            total_incidents: 17,
            availability: 0.987_654_321,
            final_health: HealthState::Recovering,
            critical_steps: 1_234,
            evidence_len: 99,
            evidence_chain_ok: false,
            evidence_seals: 4,
            evidence_coverage: 1.0,
            console_lines: 56,
            monitor_overhead_cycles: 31_337,
            reboots: 2,
            attacker_wins: 1,
            telemetry: Some(sample_telemetry()),
            availability_detail: Some(AvailabilityReport {
                critical_offered: 400,
                critical_delivered: 398,
                noncritical_offered: 800,
                noncritical_delivered: 512,
                tier_raises: 3,
                tier_lowers: 2,
                final_tier: DegradationTier::ShedNonCritical,
                peak_tier: DegradationTier::CriticalOnly,
                time_in_tier: [700_000, 200_000, 100_000, 0],
                breaker_trips: 2,
                breaker_resets: 1,
                actions_suppressed: 4,
            }),
            faultplane: Some(FaultPlaneStats {
                events_lost: 12,
                events_delayed: 7,
                events_reordered: 3,
                events_corrupted: 2,
                delivery_retries: 31,
                recovered_deliveries: 19,
                backoff_cycles: 4_096,
                monitor_stalls: 5,
                monitors_crashed: 1,
                monitors_quarantined: 1,
                response_drops: 2,
                response_retries: 6,
                degraded_correlation: true,
            }),
            pool: Some(PoolStats {
                provision_hits: 41,
                provision_misses: 3,
                platform_recycles: 43,
            }),
        }
    }

    #[test]
    fn report_round_trips_losslessly() {
        let report = sample_report();
        let json = report.to_json();
        let back = RunReport::from_json(&json).expect("decode");
        assert_eq!(report, back);
        // and the encoding itself is stable
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn telemetry_none_encodes_as_null() {
        let mut report = sample_report();
        report.telemetry = None;
        let json = report.to_json();
        assert!(json.contains("\"telemetry\":null"));
        assert_eq!(RunReport::from_json(&json).expect("decode"), report);
    }

    #[test]
    fn faultplane_none_encodes_as_null() {
        let mut report = sample_report();
        report.faultplane = None;
        let json = report.to_json();
        assert!(json.contains("\"faultplane\":null"));
        assert_eq!(RunReport::from_json(&json).expect("decode"), report);
    }

    #[test]
    fn availability_detail_is_omitted_when_none() {
        // optional-field semantics: a policy-off report encodes exactly as
        // it did before the field existed, and old JSON (no field at all)
        // still decodes
        let mut report = sample_report();
        report.availability_detail = None;
        let json = report.to_json();
        assert!(!json.contains("availability_detail"));
        assert_eq!(RunReport::from_json(&json).expect("decode"), report);
    }

    #[test]
    fn pool_stats_are_omitted_when_none() {
        // same optional-field semantics as availability_detail: a report
        // without the audit knob encodes exactly as pre-pool reports did
        let mut report = sample_report();
        report.pool = None;
        let json = report.to_json();
        assert!(!json.contains("\"pool\""));
        assert_eq!(RunReport::from_json(&json).expect("decode"), report);
    }

    #[test]
    fn pool_stats_round_trip() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.contains(
            "\"pool\":{\"provision_hits\":41,\"provision_misses\":3,\"platform_recycles\":43}"
        ));
        let back = RunReport::from_json(&json).expect("decode");
        assert_eq!(back.pool, report.pool);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn availability_detail_round_trips() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.contains("\"final_tier\":\"shed-non-critical\""));
        assert!(json.contains("\"peak_tier\":\"critical-only\""));
        assert!(json.contains("\"time_in_tier\":[700000,200000,100000,0]"));
        let back = RunReport::from_json(&json).expect("decode");
        assert_eq!(back.availability_detail, report.availability_detail);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn availability_detail_rejects_bad_tier_names() {
        let report = sample_report();
        let json = report.to_json().replace(
            "\"final_tier\":\"shed-non-critical\"",
            "\"final_tier\":\"turbo\"",
        );
        assert!(RunReport::from_json(&json).is_err());
    }

    #[test]
    fn faultplane_stats_round_trip() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.contains("\"events_lost\":12"));
        assert!(json.contains("\"degraded_correlation\":true"));
        let back = RunReport::from_json(&json).expect("decode");
        assert_eq!(back.faultplane, report.faultplane);
    }

    #[test]
    fn telemetry_snapshot_round_trips_standalone() {
        let snapshot = sample_telemetry();
        let json = snapshot.to_json();
        assert!(json.contains("\"monitor-sample\""));
        assert!(json.contains("\"detection_latency_cycles\""));
        let back = TelemetrySnapshot::from_json(&json).expect("decode");
        assert_eq!(back, snapshot);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn whole_floats_survive() {
        let mut report = sample_report();
        report.availability = 1.0;
        report.evidence_coverage = 0.0;
        let back = RunReport::from_json(&report.to_json()).expect("decode");
        assert_eq!(back.availability, 1.0);
        assert_eq!(back.evidence_coverage, 0.0);
    }

    #[test]
    fn decode_accepts_whitespace_and_reordered_fields() {
        let report = sample_report();
        // reordering is free because the decoder goes through a map
        let pretty = report
            .to_json()
            .replace(",\"seed\"", ",\n  \"seed\"")
            .replace(",\"attacks\"", ",\n  \"attacks\"");
        assert_eq!(RunReport::from_json(&pretty).expect("decode"), report);
    }

    #[test]
    fn decode_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,2]",
            "{\"profile\":\"NoSuchProfile\"}",
            "{\"profile\":\"CyberResilient\"}", // missing fields
            "nullx",
        ] {
            assert!(RunReport::from_json(bad).is_err(), "accepted {bad:?}");
        }
        let report = sample_report();
        let trailing = format!("{} x", report.to_json());
        assert!(RunReport::from_json(&trailing).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_string(&mut out, "tab\there \"q\" back\\slash\nnew \u{1} 日本");
        let value = parse(&out).expect("parse");
        assert_eq!(
            value,
            Value::String("tab\there \"q\" back\\slash\nnew \u{1} 日本".into())
        );
    }

    #[test]
    fn attack_kind_names_all_resolve() {
        for kind in AttackKind::ALL {
            assert_eq!(attack_kind_from(&kind.to_string()).expect("resolves"), kind);
        }
        assert!(attack_kind_from("NotAnAttack").is_err());
    }
}
