//! Run reports: the measurements every experiment consumes.

use crate::config::PlatformProfile;
use crate::faultplane::FaultPlaneStats;
use crate::pool::PoolStats;
use crate::telemetry::TelemetrySnapshot;
use cres_attacks::AttackKind;
use cres_response::AvailabilityReport;
use cres_sim::SimTime;
use cres_ssm::{HealthState, IncidentKind};
use serde::Serialize;

/// Per-attack scoring against ground truth.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttackOutcomeReport {
    /// Injector name.
    pub name: String,
    /// Attack class.
    pub kind: AttackKind,
    /// When the first step executed.
    pub first_injection: Option<SimTime>,
    /// When the first matching incident was classified.
    pub detected_at: Option<SimTime>,
    /// Detection latency in cycles (`detected_at - first_injection`).
    pub detection_latency: Option<u64>,
    /// Matching incidents classified.
    pub matching_incidents: u32,
    /// Attack steps that achieved their goal (attacker wins).
    pub steps_achieved: u32,
    /// Total steps executed.
    pub steps_executed: u32,
}

impl AttackOutcomeReport {
    /// True when the platform classified a matching incident.
    pub fn detected(&self) -> bool {
        self.detected_at.is_some()
    }
}

/// Which incident kinds count as "detecting" an attack kind.
pub fn matching_incident_kinds(attack: AttackKind) -> &'static [IncidentKind] {
    match attack {
        AttackKind::CodeInjection => &[IncidentKind::CodeInjection],
        AttackKind::MemoryProbe => &[IncidentKind::MemoryProbe, IncidentKind::PolicyViolation],
        AttackKind::FirmwareTamper => {
            &[IncidentKind::FirmwareTamper, IncidentKind::PolicyViolation]
        }
        AttackKind::Downgrade => &[IncidentKind::FirmwareTamper],
        AttackKind::DmaExfil => &[
            IncidentKind::PolicyViolation,
            IncidentKind::MemoryProbe,
            IncidentKind::Exfiltration,
        ],
        AttackKind::DebugIntrusion => &[IncidentKind::DebugIntrusion],
        AttackKind::NetworkFlood => &[IncidentKind::NetworkFlood],
        AttackKind::ExploitTraffic => &[IncidentKind::ExploitTraffic],
        AttackKind::Exfiltration => &[IncidentKind::Exfiltration],
        AttackKind::SensorSpoof => &[IncidentKind::SensorSpoof],
        AttackKind::FaultInjection => &[IncidentKind::FaultInjection],
        AttackKind::LogWipe => &[IncidentKind::PolicyViolation, IncidentKind::MemoryProbe],
        AttackKind::SyscallAnomaly => &[IncidentKind::BehaviourAnomaly],
        AttackKind::SystemHang => &[IncidentKind::SystemHang],
    }
}

/// The full report of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunReport {
    /// Profile the run used.
    pub profile: PlatformProfile,
    /// Seed the run used.
    pub seed: u64,
    /// Simulated duration in cycles.
    pub duration_cycles: u64,
    /// Whether initial boot verified.
    pub boot_ok: bool,
    /// Per-attack scoring.
    pub attacks: Vec<AttackOutcomeReport>,
    /// Total monitor events ingested by the SSM.
    pub total_events: u64,
    /// Total incidents classified.
    pub total_incidents: u64,
    /// Service availability (healthy+degraded time fraction).
    pub availability: f64,
    /// Final health state.
    pub final_health: HealthState,
    /// Steps completed by critical tasks (service-delivery volume).
    pub critical_steps: u64,
    /// Evidence records at end of run.
    pub evidence_len: usize,
    /// Whether the evidence chain verified at end of run.
    pub evidence_chain_ok: bool,
    /// Merkle audit seals taken during the run.
    pub evidence_seals: usize,
    /// Fraction of ground-truth injection instants evidenced (E6).
    pub evidence_coverage: f64,
    /// Console (UART) log lines surviving at end of run.
    pub console_lines: usize,
    /// Monitor sampling overhead in cycles (E8).
    pub monitor_overhead_cycles: u64,
    /// Reboots incurred.
    pub reboots: u32,
    /// Attacker win count (steps that achieved their goal).
    pub attacker_wins: u32,
    /// End-of-run telemetry (trace/metrics) snapshot; `None` when the
    /// telemetry layer was disabled for the run.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Fault-plane injection/recovery counters; `None` when the fault
    /// plane was disabled for the run. Independent of `telemetry`, so
    /// fault accounting survives a telemetry-off run.
    pub faultplane: Option<FaultPlaneStats>,
    /// Per-criticality-class service availability and policy-engine
    /// accounting (tiers, breakers); `None` when the response policy
    /// engine was disabled for the run.
    pub availability_detail: Option<AvailabilityReport>,
    /// The owning worker's cumulative [`PoolStats`] at the end of a pooled
    /// run — proof the pool was warm. `None` for unpooled runs and unless
    /// `telemetry.pool_stats` opts in: the counters depend on how many
    /// jobs the worker had already run, so the field is schedule-dependent
    /// and must stay out of reports that are diffed across thread counts.
    pub pool: Option<PoolStats>,
}

impl RunReport {
    /// Fraction of attacks detected.
    pub fn detection_rate(&self) -> f64 {
        if self.attacks.is_empty() {
            return 1.0;
        }
        self.attacks.iter().filter(|a| a.detected()).count() as f64 / self.attacks.len() as f64
    }

    /// Mean detection latency over detected attacks (cycles).
    pub fn mean_detection_latency(&self) -> Option<f64> {
        let latencies: Vec<u64> = self
            .attacks
            .iter()
            .filter_map(|a| a.detection_latency)
            .collect();
        if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<u64>() as f64 / latencies.len() as f64)
        }
    }

    /// One-line summary for experiment tables.
    pub fn summary_row(&self) -> String {
        format!(
            "{:<16} det {:>4.0}% lat {:>9} avail {:>6.2}% evid {:>5} chain {} wins {:>3} reboots {}",
            self.profile.to_string(),
            self.detection_rate() * 100.0,
            self.mean_detection_latency()
                .map_or("-".to_string(), |l| format!("{l:.0}cy")),
            self.availability * 100.0,
            self.evidence_len,
            if self.evidence_chain_ok { "ok " } else { "BAD" },
            self.attacker_wins,
            self.reboots,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(detected: Option<u64>) -> AttackOutcomeReport {
        AttackOutcomeReport {
            name: "x".into(),
            kind: AttackKind::NetworkFlood,
            first_injection: Some(SimTime::at_cycle(100)),
            detected_at: detected.map(SimTime::at_cycle),
            detection_latency: detected.map(|d| d - 100),
            matching_incidents: u32::from(detected.is_some()),
            steps_achieved: 1,
            steps_executed: 1,
        }
    }

    fn report(attacks: Vec<AttackOutcomeReport>) -> RunReport {
        RunReport {
            profile: PlatformProfile::CyberResilient,
            seed: 0,
            duration_cycles: 1000,
            boot_ok: true,
            attacks,
            total_events: 0,
            total_incidents: 0,
            availability: 1.0,
            final_health: HealthState::Healthy,
            critical_steps: 0,
            evidence_len: 0,
            evidence_chain_ok: true,
            evidence_seals: 0,
            evidence_coverage: 1.0,
            console_lines: 0,
            monitor_overhead_cycles: 0,
            reboots: 0,
            attacker_wins: 0,
            telemetry: None,
            faultplane: None,
            availability_detail: None,
            pool: None,
        }
    }

    #[test]
    fn detection_rate_and_latency() {
        let r = report(vec![outcome(Some(150)), outcome(None), outcome(Some(300))]);
        assert!((r.detection_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.mean_detection_latency(), Some(125.0));
    }

    #[test]
    fn empty_attacks_is_full_detection() {
        let r = report(vec![]);
        assert_eq!(r.detection_rate(), 1.0);
        assert_eq!(r.mean_detection_latency(), None);
    }

    #[test]
    fn every_attack_kind_has_matching_incidents() {
        for kind in AttackKind::ALL {
            assert!(!matching_incident_kinds(kind).is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn report_serializes_and_round_trips() {
        let r = report(vec![outcome(Some(150)), outcome(None)]);
        let json = r.to_json();
        assert!(json.contains("\"profile\":\"CyberResilient\""));
        assert_eq!(RunReport::from_json(&json).expect("decode"), r);
    }

    #[test]
    fn summary_row_is_informative() {
        let row = report(vec![outcome(Some(150))]).summary_row();
        assert!(row.contains("CyberResilient"));
        assert!(row.contains("100%"));
    }
}
