//! Authenticated M2M telemetry: the paper's §III-4 concern made concrete.
//!
//! > "Machine-to-Machine communication is an enabling technology for
//! > critical infrastructure, which brought serious security challenges to
//! > secure, verify and avoid man-in-middle attacks in embedded systems."
//!
//! [`SecureChannel`] authenticates every message with an HMAC tag produced
//! by the TEE keystore — the key never leaves the secure world — and
//! enforces strictly increasing sequence numbers, so a man-in-the-middle
//! can neither tamper with, forge, nor replay telemetry without detection.
//! Rejection counters feed the platform's security telemetry.

use cres_crypto::hmac::HmacSha256;
use cres_tee::{SessionId, Tee, TeeError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An authenticated telemetry message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthMessage {
    /// Strictly increasing per-channel sequence number.
    pub seq: u64,
    /// Application payload.
    pub payload: Vec<u8>,
    /// HMAC-SHA-256 over `seq ‖ payload` under the channel key.
    pub tag: [u8; 32],
}

/// Why an inbound message was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The tag did not verify (tamper or forgery).
    BadTag,
    /// The sequence number was not strictly newer (replay or reorder).
    Replay {
        /// Highest sequence accepted so far.
        highest_seen: u64,
        /// The stale sequence offered.
        offered: u64,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::BadTag => write!(f, "authentication tag mismatch"),
            RejectReason::Replay {
                highest_seen,
                offered,
            } => write!(f, "replay: seq {offered} not newer than {highest_seen}"),
        }
    }
}

/// One endpoint of an authenticated channel. Sender and receiver each hold
/// one, provisioned with the same keystore key name.
#[derive(Debug)]
pub struct SecureChannel {
    key_name: String,
    session: SessionId,
    next_seq: u64,
    highest_seen: Option<u64>,
    accepted: u64,
    rejected_tag: u64,
    rejected_replay: u64,
}

impl SecureChannel {
    /// Opens a channel endpoint over an existing keystore session holding
    /// `key_name`.
    pub fn new(session: SessionId, key_name: &str) -> Self {
        SecureChannel {
            key_name: key_name.to_string(),
            session,
            next_seq: 0,
            highest_seen: None,
            accepted: 0,
            rejected_tag: 0,
            rejected_replay: 0,
        }
    }

    fn message_bytes(seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut m = Vec::with_capacity(8 + payload.len());
        m.extend_from_slice(&seq.to_le_bytes());
        m.extend_from_slice(payload);
        m
    }

    /// Produces the next authenticated message. The MAC is computed inside
    /// the TEE; this endpoint never sees the key.
    ///
    /// # Errors
    ///
    /// Propagates [`TeeError`] when the session or key is gone (e.g. after
    /// a key-zeroisation countermeasure).
    pub fn send(&mut self, tee: &Tee, payload: &[u8]) -> Result<AuthMessage, TeeError> {
        let seq = self.next_seq;
        let tag = tee.mac_with_key(
            self.session,
            &self.key_name,
            &Self::message_bytes(seq, payload),
        )?;
        self.next_seq += 1;
        Ok(AuthMessage {
            seq,
            payload: payload.to_vec(),
            tag,
        })
    }

    /// Verifies an inbound message: tag first, then anti-replay.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`]; TEE failures surface as
    /// [`RejectReason::BadTag`] (an endpoint without the key cannot accept
    /// anything).
    pub fn receive(&mut self, tee: &Tee, msg: &AuthMessage) -> Result<Vec<u8>, RejectReason> {
        let expect = tee
            .mac_with_key(
                self.session,
                &self.key_name,
                &Self::message_bytes(msg.seq, &msg.payload),
            )
            .map_err(|_| RejectReason::BadTag)?;
        if !cres_crypto::ct::ct_eq(&expect, &msg.tag) {
            self.rejected_tag += 1;
            return Err(RejectReason::BadTag);
        }
        if let Some(highest) = self.highest_seen {
            if msg.seq <= highest {
                self.rejected_replay += 1;
                return Err(RejectReason::Replay {
                    highest_seen: highest,
                    offered: msg.seq,
                });
            }
        }
        self.highest_seen = Some(msg.seq);
        self.accepted += 1;
        Ok(msg.payload.clone())
    }

    /// `(accepted, bad-tag rejections, replay rejections)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.accepted, self.rejected_tag, self.rejected_replay)
    }
}

/// A man-in-the-middle manipulation of an in-flight message, for tests and
/// examples.
pub fn mitm_tamper(msg: &AuthMessage, new_payload: &[u8]) -> AuthMessage {
    AuthMessage {
        seq: msg.seq,
        payload: new_payload.to_vec(),
        tag: msg.tag, // the attacker cannot recompute this
    }
}

/// A naive forgery: the attacker MACs with a guessed key.
pub fn mitm_forge(seq: u64, payload: &[u8], guessed_key: &[u8]) -> AuthMessage {
    let mut m = Vec::with_capacity(8 + payload.len());
    m.extend_from_slice(&seq.to_le_bytes());
    m.extend_from_slice(payload);
    AuthMessage {
        seq,
        payload: payload.to_vec(),
        tag: HmacSha256::mac(guessed_key, &m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PlatformConfig, PlatformProfile};
    use crate::provision::provision;

    fn tee_with_channel_key() -> (Tee, SessionId) {
        let p = provision(&PlatformConfig::new(PlatformProfile::CyberResilient, 606));
        let mut tee = p.tee;
        let session = tee.open_session("keystore").unwrap();
        tee.store_key(session, "m2m-telemetry", b"channel key material")
            .unwrap();
        (tee, session)
    }

    #[test]
    fn round_trip_accepts_in_order_messages() {
        let (tee, session) = tee_with_channel_key();
        let mut tx = SecureChannel::new(session, "m2m-telemetry");
        let mut rx = SecureChannel::new(session, "m2m-telemetry");
        for i in 0..10u8 {
            let msg = tx.send(&tee, &[i; 16]).unwrap();
            assert_eq!(rx.receive(&tee, &msg).unwrap(), vec![i; 16]);
        }
        assert_eq!(rx.stats(), (10, 0, 0));
    }

    #[test]
    fn tampered_payload_rejected() {
        let (tee, session) = tee_with_channel_key();
        let mut tx = SecureChannel::new(session, "m2m-telemetry");
        let mut rx = SecureChannel::new(session, "m2m-telemetry");
        let msg = tx.send(&tee, b"freq=50.01").unwrap();
        let evil = mitm_tamper(&msg, b"freq=61.50");
        assert_eq!(rx.receive(&tee, &evil), Err(RejectReason::BadTag));
        // the genuine message still goes through
        assert!(rx.receive(&tee, &msg).is_ok());
        assert_eq!(rx.stats(), (1, 1, 0));
    }

    #[test]
    fn forged_message_rejected() {
        let (tee, session) = tee_with_channel_key();
        let mut rx = SecureChannel::new(session, "m2m-telemetry");
        let forged = mitm_forge(0, b"open breaker", b"guessed-key");
        assert_eq!(rx.receive(&tee, &forged), Err(RejectReason::BadTag));
    }

    #[test]
    fn replay_rejected() {
        let (tee, session) = tee_with_channel_key();
        let mut tx = SecureChannel::new(session, "m2m-telemetry");
        let mut rx = SecureChannel::new(session, "m2m-telemetry");
        let m0 = tx.send(&tee, b"a").unwrap();
        let m1 = tx.send(&tee, b"b").unwrap();
        rx.receive(&tee, &m0).unwrap();
        rx.receive(&tee, &m1).unwrap();
        // replaying either is rejected with the replay reason
        assert!(matches!(
            rx.receive(&tee, &m0),
            Err(RejectReason::Replay { offered: 0, .. })
        ));
        assert!(matches!(
            rx.receive(&tee, &m1),
            Err(RejectReason::Replay { offered: 1, .. })
        ));
        assert_eq!(rx.stats(), (2, 0, 2));
    }

    #[test]
    fn reordering_is_treated_as_replay() {
        // strict monotonicity: late delivery of an older message is refused
        let (tee, session) = tee_with_channel_key();
        let mut tx = SecureChannel::new(session, "m2m-telemetry");
        let mut rx = SecureChannel::new(session, "m2m-telemetry");
        let m0 = tx.send(&tee, b"a").unwrap();
        let m1 = tx.send(&tee, b"b").unwrap();
        rx.receive(&tee, &m1).unwrap();
        assert!(matches!(
            rx.receive(&tee, &m0),
            Err(RejectReason::Replay { .. })
        ));
    }

    #[test]
    fn zeroised_keys_fail_closed() {
        let (mut tee, session) = tee_with_channel_key();
        let mut tx = SecureChannel::new(session, "m2m-telemetry");
        let msg = tx.send(&tee, b"x").unwrap();
        tee.zeroize_keys();
        // sending and receiving both fail once the key is gone
        assert!(tx.send(&tee, b"y").is_err());
        let mut rx = SecureChannel::new(session, "m2m-telemetry");
        assert_eq!(rx.receive(&tee, &msg), Err(RejectReason::BadTag));
    }
}
