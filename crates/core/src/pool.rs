//! Per-worker platform pooling for campaign throughput.
//!
//! Campaign cells used to rebuild a [`Platform`] from scratch for every
//! job — and platform construction is dominated (in both wall clock and
//! allocation count) by RSA key generation inside
//! [`crate::provision::provision`]. Provisioning is a pure function of
//! `(seed, rsa_bits, TEE deployment)` though, and most campaigns sweep a
//! handful of such cells across many scenarios, so a per-worker
//! [`PlatformPool`]:
//!
//! * caches [`Provisioned`] factory state per cell and hands out clones,
//!   so RSA keygen and image signing run once per cell per worker instead
//!   of once per job;
//! * recycles the previous job's [`Platform`] through
//!   [`Platform::reset`], keeping the event buffer, the SSM's
//!   evidence/intern storage and the telemetry recorder's ring across
//!   jobs;
//! * carries the scoring scratch ([`ScoreScratch`]) so `RunReport`
//!   assembly reuses its working buffers.
//!
//! Pooling is semantically invisible: a pooled run is bit-identical to a
//! fresh-platform run (pinned by the `platform_reset` proptests and the
//! campaign determinism suite), because every reused buffer is
//! content-reset and everything else is rebuilt from the pure provisioning
//! output.
//!
//! The pool is deliberately *per worker* — it is not `Sync`, never shared,
//! and therefore adds no locking to the campaign's work-stealing loop.

use crate::config::PlatformConfig;
use crate::platform::Platform;
use crate::provision::{provision, Provisioned};
use cres_sim::SimTime;
use cres_tee::TeeDeployment;

/// Provisioning cache capacity. Campaigns sweep a few `(profile, seed)`
/// cells per worker; 8 covers every in-tree experiment with room to spare,
/// and eviction (oldest first) only costs a re-provision, never
/// correctness.
const PROVISION_CACHE_CAP: usize = 8;

/// The inputs [`provision`] is a pure function of — the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProvisionKey {
    seed: u64,
    rsa_bits: usize,
    tee: TeeDeployment,
}

impl ProvisionKey {
    fn of(config: &PlatformConfig) -> Self {
        ProvisionKey {
            seed: config.seed,
            rsa_bits: config.rsa_bits,
            tee: config.tee_deployment(),
        }
    }
}

/// Reusable working buffers for `RunReport` assembly, carried across jobs
/// by the pool so scoring does not rebuild them per run.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    /// Ground-truth injection times, rebuilt (capacity kept) per score.
    pub ground_truth: Vec<SimTime>,
}

/// Cumulative pool counters: how warm the worker's pool actually is.
///
/// A healthy steady-state sweep shows `provision_hits` dominating
/// `provision_misses` (misses are bounded by the number of distinct
/// provisioning cells the worker sees) and `platform_recycles` tracking
/// one-less-than the jobs run (only the first acquire builds fresh).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct PoolStats {
    /// Provisioning-cache hits (RSA keygen + signing skipped).
    pub provision_hits: u64,
    /// Provisioning-cache misses (full provisioning paid).
    pub provision_misses: u64,
    /// Acquires satisfied by recycling the previous job's platform.
    pub platform_recycles: u64,
}

impl PoolStats {
    /// Provisioning-cache hit rate in `[0, 1]`; `1.0` for an unused pool.
    pub fn hit_rate(&self) -> f64 {
        let total = self.provision_hits + self.provision_misses;
        if total == 0 {
            return 1.0;
        }
        self.provision_hits as f64 / total as f64
    }

    /// Field-wise sum — aggregating per-shard pools into fleet totals.
    pub fn merge(&mut self, other: &PoolStats) {
        self.provision_hits += other.provision_hits;
        self.provision_misses += other.provision_misses;
        self.platform_recycles += other.platform_recycles;
    }
}

/// A per-worker pool of provisioning state and one recyclable platform.
#[derive(Default)]
pub struct PlatformPool {
    provisioned: Vec<(ProvisionKey, Provisioned)>,
    idle: Option<Platform>,
    scratch: ScoreScratch,
    hits: u64,
    misses: u64,
    recycles: u64,
}

impl PlatformPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A platform for `config`: the recycled previous platform when one is
    /// idle (via [`Platform::reset`]), else a fresh build — either way fed
    /// from the provisioning cache.
    pub fn acquire(&mut self, config: PlatformConfig) -> Platform {
        let provisioned = self.provisioned(&config);
        match self.idle.take() {
            Some(mut platform) => {
                self.recycles += 1;
                platform.reset(config, provisioned);
                platform
            }
            None => Platform::from_provisioned(config, provisioned),
        }
    }

    /// Returns a finished platform for the next [`PlatformPool::acquire`]
    /// to recycle.
    pub fn release(&mut self, platform: Platform) {
        self.idle = Some(platform);
    }

    /// The scoring scratch buffers.
    pub fn scratch_mut(&mut self) -> &mut ScoreScratch {
        &mut self.scratch
    }

    /// `(cache hits, cache misses)` for the provisioning cache — bench and
    /// test introspection.
    pub fn provision_cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Cumulative hit/miss/recycle counters since the pool was created.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            provision_hits: self.hits,
            provision_misses: self.misses,
            platform_recycles: self.recycles,
        }
    }

    /// Factory state for `config`, cloned from the cache when the cell was
    /// provisioned before.
    fn provisioned(&mut self, config: &PlatformConfig) -> Provisioned {
        let key = ProvisionKey::of(config);
        if let Some((_, cached)) = self.provisioned.iter().find(|(k, _)| *k == key) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let fresh = provision(config);
        if self.provisioned.len() == PROVISION_CACHE_CAP {
            self.provisioned.remove(0);
        }
        self.provisioned.push((key, fresh.clone()));
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformProfile;

    #[test]
    fn provision_cache_hits_on_same_cell() {
        let mut pool = PlatformPool::new();
        let config = PlatformConfig::new(PlatformProfile::CyberResilient, 9);
        let p1 = pool.acquire(config);
        pool.release(p1);
        let p2 = pool.acquire(config);
        pool.release(p2);
        assert_eq!(pool.provision_cache_stats(), (1, 1));
    }

    #[test]
    fn profiles_sharing_a_tee_deployment_share_provisioning() {
        // PassiveTrust and TeeShared both map to SharedResources, so with
        // one seed they are a single provisioning cell.
        let mut pool = PlatformPool::new();
        for profile in [PlatformProfile::PassiveTrust, PlatformProfile::TeeShared] {
            let p = pool.acquire(PlatformConfig::new(profile, 3));
            pool.release(p);
        }
        assert_eq!(pool.provision_cache_stats(), (1, 1));
    }

    #[test]
    fn pooled_platform_matches_fresh_platform_state() {
        let config_a = PlatformConfig::new(PlatformProfile::CyberResilient, 5);
        let config_b = PlatformConfig::new(PlatformProfile::TeeShared, 6);
        let mut pool = PlatformPool::new();
        // Dirty the pooled platform with a full job on a different config
        // first, then rebuild it for config_b.
        let first = pool.acquire(config_a);
        pool.release(first);
        let pooled = pool.acquire(config_b);
        let fresh = Platform::new(config_b);
        assert_eq!(pooled.boot_report, fresh.boot_report);
        assert_eq!(
            pooled.ssm.evidence().records(),
            fresh.ssm.evidence().records()
        );
        assert_eq!(pooled.soc.uart.lines(), fresh.soc.uart.lines());
    }

    #[test]
    fn stats_count_hits_misses_and_recycles() {
        let mut pool = PlatformPool::new();
        let config = PlatformConfig::new(PlatformProfile::CyberResilient, 21);
        assert_eq!(pool.stats(), PoolStats::default());
        assert_eq!(
            pool.stats().hit_rate(),
            1.0,
            "unused pool is vacuously warm"
        );
        for _ in 0..3 {
            let p = pool.acquire(config);
            pool.release(p);
        }
        let stats = pool.stats();
        assert_eq!(
            stats.provision_misses, 1,
            "only the first acquire provisions"
        );
        assert_eq!(stats.provision_hits, 2);
        assert_eq!(
            stats.platform_recycles, 2,
            "only the first acquire builds fresh"
        );
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        let mut merged = stats;
        merged.merge(&stats);
        assert_eq!(merged.provision_hits, 4);
        assert_eq!(merged.platform_recycles, 4);
    }

    #[test]
    fn cache_evicts_oldest_beyond_capacity() {
        let mut pool = PlatformPool::new();
        for seed in 0..=PROVISION_CACHE_CAP as u64 {
            let p = pool.acquire(PlatformConfig::new(PlatformProfile::CyberResilient, seed));
            pool.release(p);
        }
        // seed 0 was evicted; acquiring it again is a miss
        let p = pool.acquire(PlatformConfig::new(PlatformProfile::CyberResilient, 0));
        pool.release(p);
        let (hits, misses) = pool.provision_cache_stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, PROVISION_CACHE_CAP as u64 + 2);
    }
}
