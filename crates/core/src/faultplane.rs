//! The fault plane: deterministic fault injection into the security
//! pipeline itself.
//!
//! Every experiment so far assumed the resilience layer is perfectly
//! reliable — monitors never die, the monitor→SSM interconnect never drops
//! an event, response commands always reach their backend. No real SoC
//! interconnect offers that. This module makes pipeline failure a
//! first-class, *seed-deterministic* workload:
//!
//! * **event channel faults** — loss, delayed delivery (held for whole
//!   sampling batches), adjacent reordering, and in-transit corruption
//!   (severity downgraded one band, detail mangled) of monitor→SSM events;
//! * **monitor faults** — probabilistic single-round stalls and permanent
//!   crash-at-cycle of a seed-chosen subset of the monitor fleet;
//! * **response faults** — command drops between planner and backend.
//!
//! The pipeline fights back with bounded, sim-clock-based retry (exponential
//! backoff + deterministic jitter — see [`RetryPolicy`]) and, at the SSM
//! level, heartbeat liveness tracking that quarantines dead monitors and
//! widens correlation windows (`cres_ssm::MonitorHealth`). Experiment E11
//! (`e11_selfheal`) sweeps fault intensity against detection performance.
//!
//! Determinism contract: the injector draws from its own RNG stream
//! (`fork("fault-plane")` of the platform seed), so
//!
//! * a disabled fault plane leaves every other stream untouched — reports
//!   are byte-identical to a build without this module, and
//! * telemetry on/off never changes fault decisions (the injector never
//!   reads the sink).

use cres_monitor::MonitorEvent;
use cres_sim::{fault_code, DetRng, SimTime, Stage, StageSink};
use serde::{Deserialize, Serialize};
use std::mem;

/// Fault-plane configuration, carried per [`crate::PlatformConfig`] cell.
///
/// All probabilities are per-event (or per-command / per-monitor-round)
/// Bernoulli draws in `[0, 1]`. The default is everything off, which is
/// bit-for-bit equivalent to a platform without a fault plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlaneConfig {
    /// Master switch. When false the injector is never constructed and no
    /// RNG is drawn.
    pub enabled: bool,
    /// Probability a monitor event is lost in transit (before retry).
    pub event_loss: f64,
    /// Probability a surviving event is held back for later delivery.
    pub event_delay: f64,
    /// Maximum number of sampling batches a delayed event is held for
    /// (actual hold is uniform in `1..=max_delay_batches`).
    pub max_delay_batches: u32,
    /// Probability of swapping each adjacent pair in a delivered batch.
    pub event_reorder: f64,
    /// Probability an event is corrupted in transit (severity downgraded
    /// one band, detail mangled).
    pub event_corrupt: f64,
    /// Probability a response command is dropped before the backend
    /// (before retry).
    pub response_drop: f64,
    /// Number of monitors (seed-chosen from the periodic fleet) that crash
    /// permanently at [`FaultPlaneConfig::crash_at`].
    pub crashed_monitors: u32,
    /// Cycle at which crashing monitors die.
    pub crash_at: u64,
    /// Probability a live monitor skips one sampling round.
    pub monitor_stall: f64,
    /// Retry policy for faulted event and command deliveries.
    pub retry: RetryPolicy,
}

impl Default for FaultPlaneConfig {
    fn default() -> Self {
        FaultPlaneConfig {
            enabled: false,
            event_loss: 0.0,
            event_delay: 0.0,
            max_delay_batches: 3,
            event_reorder: 0.0,
            event_corrupt: 0.0,
            response_drop: 0.0,
            crashed_monitors: 0,
            crash_at: 0,
            monitor_stall: 0.0,
            retry: RetryPolicy::default(),
        }
    }
}

impl FaultPlaneConfig {
    /// A moderately hostile interconnect: the E11 sweep's parameterisation.
    /// `loss` is the event-loss probability; `crashed` the number of
    /// monitors that die at `crash_at`.
    pub fn sweep_cell(loss: f64, crashed: u32, crash_at: u64) -> Self {
        FaultPlaneConfig {
            enabled: true,
            event_loss: loss,
            event_delay: loss / 2.0,
            max_delay_batches: 3,
            event_reorder: loss / 2.0,
            event_corrupt: loss / 4.0,
            response_drop: loss / 2.0,
            crashed_monitors: crashed,
            crash_at,
            monitor_stall: loss / 2.0,
            retry: RetryPolicy::default(),
        }
    }
}

/// Bounded retry with exponential backoff and deterministic jitter, in sim
/// cycles (never wall time).
///
/// A faulted delivery is retried up to `max_attempts - 1` times; attempt
/// `n`'s backoff is `base_backoff << n` plus a jitter draw in
/// `[0, base_backoff)`, clamped to `max_backoff` and to be non-decreasing —
/// so a schedule is always **monotone and bounded** (pinned by property
/// tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total delivery attempts (first try included). 1 disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry, in cycles.
    pub base_backoff: u64,
    /// Ceiling on any single backoff, in cycles.
    pub max_backoff: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: 64,
            max_backoff: 1_024,
        }
    }
}

impl RetryPolicy {
    /// Draws the full backoff schedule (one entry per retry, i.e.
    /// `max_attempts - 1` entries) from `rng`. Each entry is the delay in
    /// cycles before that retry; the sequence is non-decreasing and every
    /// entry is `<= max_backoff`.
    pub fn schedule(&self, rng: &mut DetRng) -> Vec<u64> {
        let mut delays = Vec::new();
        let mut previous = 0u64;
        for attempt in 0..self.max_attempts.saturating_sub(1) {
            let exponential = self
                .base_backoff
                .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
                .min(self.max_backoff);
            let jitter = if self.base_backoff > 0 {
                rng.range_u64(0, self.base_backoff)
            } else {
                0
            };
            let delay = exponential
                .saturating_add(jitter)
                .min(self.max_backoff)
                .max(previous);
            previous = delay;
            delays.push(delay);
        }
        delays
    }
}

/// Counters for everything the fault plane injected and everything the
/// pipeline did to survive it. Embedded in `RunReport` (independent of the
/// telemetry layer, so fault accounting survives `telemetry.enabled =
/// false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlaneStats {
    /// Events dropped after exhausting every delivery retry.
    pub events_lost: u64,
    /// Events held back for at least one batch.
    pub events_delayed: u64,
    /// Adjacent event pairs swapped.
    pub events_reordered: u64,
    /// Events corrupted in transit.
    pub events_corrupted: u64,
    /// Event delivery retries spent.
    pub delivery_retries: u64,
    /// Events that initially faulted but were recovered by a retry.
    pub recovered_deliveries: u64,
    /// Total backoff cycles spent on retries (events + responses).
    pub backoff_cycles: u64,
    /// Monitor sampling rounds skipped by stalls.
    pub monitor_stalls: u64,
    /// Monitors crashed permanently.
    pub monitors_crashed: u64,
    /// Monitors the SSM quarantined via heartbeat loss.
    pub monitors_quarantined: u64,
    /// Response commands dropped after exhausting retries.
    pub response_drops: u64,
    /// Response delivery retries spent.
    pub response_retries: u64,
    /// True when correlation entered sensing-degraded compensation.
    pub degraded_correlation: bool,
}

/// The runtime fault injector: one per platform, constructed only when
/// [`FaultPlaneConfig::enabled`] is set.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    config: FaultPlaneConfig,
    rng: DetRng,
    /// Events held back by the delay fault: `(batches_remaining, event)`.
    delayed: Vec<(u32, MonitorEvent)>,
    /// Indices (into the platform's periodic monitor fleet) that crash at
    /// `config.crash_at`.
    crashed: Vec<usize>,
    /// Reused staging buffer for [`FaultPlane::filter_events`] — the batch
    /// is swapped in here so the caller's buffer can be rebuilt in place
    /// without a per-batch allocation.
    scratch: Vec<MonitorEvent>,
    stats: FaultPlaneStats,
}

impl FaultPlane {
    /// Builds the injector for a platform seeded with `seed` driving
    /// `monitor_count` periodic monitors. The crash victims are a
    /// seed-deterministic choice of `config.crashed_monitors` distinct
    /// indices.
    pub fn new(config: FaultPlaneConfig, seed: u64, monitor_count: usize) -> Self {
        let mut rng = DetRng::seed_from(seed).fork("fault-plane");
        let victims = (config.crashed_monitors as usize).min(monitor_count);
        let crashed: Vec<usize> = rng
            .permutation(monitor_count)
            .into_iter()
            .take(victims)
            .collect();
        let stats = FaultPlaneStats {
            monitors_crashed: crashed.len() as u64,
            ..Default::default()
        };
        FaultPlane {
            config,
            rng,
            delayed: Vec::new(),
            crashed,
            scratch: Vec::new(),
            stats,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultPlaneConfig {
        &self.config
    }

    /// Injection/recovery counters so far.
    pub fn stats(&self) -> &FaultPlaneStats {
        &self.stats
    }

    /// Mutable access for the scoring path (quarantine/degradation counts
    /// are owned by the SSM and folded in at report time).
    pub fn stats_mut(&mut self) -> &mut FaultPlaneStats {
        &mut self.stats
    }

    /// Indices of monitors that die at [`FaultPlaneConfig::crash_at`].
    pub fn crashed_monitors(&self) -> &[usize] {
        &self.crashed
    }

    /// True when monitor `index` is dead at `now`.
    pub fn is_crashed(&self, index: usize, now: SimTime) -> bool {
        now.cycle() >= self.config.crash_at && self.crashed.contains(&index)
    }

    /// True when delayed events are waiting for a later batch — the runner
    /// must keep pumping even when a sampling round itself is empty.
    pub fn pending(&self) -> bool {
        !self.delayed.is_empty()
    }

    /// Draws the stall fault for one live monitor's sampling round. Returns
    /// true when the monitor skips this round (one `fault-plane` span, no
    /// heartbeat — a stalled monitor looks dead until it beats again).
    pub fn monitor_stalls(&mut self, now: SimTime, sink: &mut dyn StageSink) -> bool {
        if self.config.monitor_stall <= 0.0 {
            return false;
        }
        let stalled = self.rng.chance(self.config.monitor_stall);
        if stalled {
            self.stats.monitor_stalls += 1;
            sink.record_span(now, Stage::FaultPlane, fault_code::MONITOR_STALLED, 1);
        }
        stalled
    }

    /// Passes one freshly sampled batch through the faulty interconnect,
    /// rewriting `events` in place to what the SSM actually receives: due
    /// delayed events first (FIFO), then this batch's survivors —
    /// corrupted, lost (after retries), delayed, and finally reordered.
    /// Never duplicates an event, and never allocates once the internal
    /// staging buffers have warmed up.
    pub fn filter_events(
        &mut self,
        now: SimTime,
        events: &mut Vec<MonitorEvent>,
        sink: &mut dyn StageSink,
    ) {
        // Swap the incoming batch into the staging buffer and rebuild
        // `events` in place, reusing both allocations across batches.
        let mut batch = mem::take(&mut self.scratch);
        batch.clear();
        batch.append(events);

        // Release events whose hold expired; decrement the rest in place.
        let mut kept = 0;
        for i in 0..self.delayed.len() {
            let (batches, event) = self.delayed[i];
            if batches <= 1 {
                events.push(event);
            } else {
                self.delayed[kept] = (batches - 1, event);
                kept += 1;
            }
        }
        self.delayed.truncate(kept);

        for &(mut event) in &batch {
            // Corruption: the event arrives, but mangled — severity loses a
            // band and the rendered detail gains the in-transit prefix.
            if self.config.event_corrupt > 0.0 && self.rng.chance(self.config.event_corrupt) {
                event.severity = event.severity.downgrade();
                event.corrupted = true;
                self.stats.events_corrupted += 1;
                sink.record_span(now, Stage::FaultPlane, fault_code::EVENT_CORRUPTED, 1);
            }
            // Loss, fought with bounded retry.
            if self.config.event_loss > 0.0
                && self.rng.chance(self.config.event_loss)
                && !self.retry_delivery(now, self.config.event_loss, false, sink)
            {
                self.stats.events_lost += 1;
                sink.record_span(now, Stage::FaultPlane, fault_code::EVENT_LOST, 1);
                continue;
            }
            // Delay: survived, but held for 1..=max batches.
            if self.config.event_delay > 0.0
                && self.config.max_delay_batches > 0
                && self.rng.chance(self.config.event_delay)
            {
                let hold = self
                    .rng
                    .range_u64(1, u64::from(self.config.max_delay_batches) + 1)
                    as u32;
                self.stats.events_delayed += 1;
                sink.record_span(now, Stage::FaultPlane, fault_code::EVENT_DELAYED, 1);
                self.delayed.push((hold, event));
                continue;
            }
            events.push(event);
        }
        batch.clear();
        self.scratch = batch;

        // Reorder: swap adjacent pairs. A swap never duplicates or drops.
        if self.config.event_reorder > 0.0 && events.len() >= 2 {
            for i in 0..events.len() - 1 {
                if self.rng.chance(self.config.event_reorder) {
                    events.swap(i, i + 1);
                    self.stats.events_reordered += 1;
                    sink.record_span(now, Stage::FaultPlane, fault_code::EVENT_REORDERED, 1);
                }
            }
        }
    }

    /// Draws the drop fault for one response command. Returns true when the
    /// command is lost (after retries).
    pub fn drops_response(&mut self, now: SimTime, sink: &mut dyn StageSink) -> bool {
        if self.config.response_drop <= 0.0 || !self.rng.chance(self.config.response_drop) {
            return false;
        }
        if self.retry_delivery(now, self.config.response_drop, true, sink) {
            return false;
        }
        self.stats.response_drops += 1;
        sink.record_span(now, Stage::FaultPlane, fault_code::RESPONSE_DROPPED, 1);
        true
    }

    /// Spends the retry budget on a faulted delivery. Each retry waits its
    /// backoff (accounted in `backoff_cycles`) and re-rolls against
    /// `fault_p`; returns true when some retry succeeds.
    fn retry_delivery(
        &mut self,
        now: SimTime,
        fault_p: f64,
        response: bool,
        sink: &mut dyn StageSink,
    ) -> bool {
        let schedule = self.config.retry.schedule(&mut self.rng);
        for backoff in schedule {
            self.stats.backoff_cycles += backoff;
            if response {
                self.stats.response_retries += 1;
            } else {
                self.stats.delivery_retries += 1;
            }
            sink.record_span(now, Stage::FaultPlane, fault_code::DELIVERY_RETRY, backoff);
            if !self.rng.chance(fault_p) {
                self.stats.recovered_deliveries += 1;
                sink.record_span(now, Stage::FaultPlane, fault_code::DELIVERY_RECOVERED, 1);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_monitor::{Detail, Severity, Subject};
    use cres_policy::DetectionCapability;
    use cres_sim::NullSink;

    fn ev(at: u64, detail: &'static str) -> MonitorEvent {
        MonitorEvent::new(
            SimTime::at_cycle(at),
            DetectionCapability::BusPolicing,
            Severity::Alert,
            Subject::Network,
            Detail::Text(detail),
        )
    }

    fn filter(plane: &mut FaultPlane, at: u64, batch: Vec<MonitorEvent>) -> Vec<MonitorEvent> {
        let mut events = batch;
        plane.filter_events(SimTime::at_cycle(at), &mut events, &mut NullSink);
        events
    }

    #[test]
    fn disabled_config_is_default() {
        let config = FaultPlaneConfig::default();
        assert!(!config.enabled);
        assert_eq!(config.event_loss, 0.0);
        assert_eq!(config.crashed_monitors, 0);
    }

    #[test]
    fn all_off_plane_is_transparent() {
        let mut plane = FaultPlane::new(
            FaultPlaneConfig {
                enabled: true,
                ..Default::default()
            },
            1,
            8,
        );
        let batch: Vec<MonitorEvent> = (0..10).map(|i| ev(i, "x")).collect();
        let out = filter(&mut plane, 100, batch.clone());
        assert_eq!(out, batch);
        assert!(!plane.drops_response(SimTime::at_cycle(100), &mut NullSink));
        assert_eq!(plane.stats(), &FaultPlaneStats::default());
    }

    #[test]
    fn total_loss_drops_everything_and_counts() {
        let mut plane = FaultPlane::new(
            FaultPlaneConfig {
                enabled: true,
                event_loss: 1.0,
                ..Default::default()
            },
            1,
            8,
        );
        let out = filter(&mut plane, 0, (0..5).map(|i| ev(i, "x")).collect());
        assert!(out.is_empty());
        assert_eq!(plane.stats().events_lost, 5);
        // retry budget spent on every loss: (max_attempts - 1) each
        assert_eq!(plane.stats().delivery_retries, 5 * 2);
        assert!(plane.stats().backoff_cycles > 0);
    }

    #[test]
    fn delayed_events_arrive_later_without_duplication() {
        let mut plane = FaultPlane::new(
            FaultPlaneConfig {
                enabled: true,
                event_delay: 1.0,
                max_delay_batches: 2,
                ..Default::default()
            },
            1,
            8,
        );
        let batch: Vec<MonitorEvent> = (0..4).map(|i| ev(i, "d")).collect();
        let first = filter(&mut plane, 0, batch.clone());
        assert!(first.is_empty(), "everything should be held");
        assert!(plane.pending());
        let mut recovered = Vec::new();
        // Feeding empty batches releases the held events; delay cannot
        // re-fire on an already released event (release path is fault-free).
        for round in 1..=3u64 {
            recovered.extend(filter(&mut plane, round * 1_000, Vec::new()));
        }
        assert!(!plane.pending());
        assert_eq!(recovered.len(), batch.len(), "no loss, no duplication");
        assert_eq!(plane.stats().events_delayed, 4);
    }

    #[test]
    fn corruption_downgrades_and_tags() {
        let mut plane = FaultPlane::new(
            FaultPlaneConfig {
                enabled: true,
                event_corrupt: 1.0,
                ..Default::default()
            },
            1,
            8,
        );
        let out = filter(&mut plane, 0, vec![ev(0, "probe")]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warning);
        assert!(out[0].corrupted);
        assert!(out[0]
            .rendered()
            .to_string()
            .starts_with("[corrupted in transit]"));
        assert_eq!(plane.stats().events_corrupted, 1);
    }

    #[test]
    fn reorder_permutes_but_preserves_multiset() {
        let mut plane = FaultPlane::new(
            FaultPlaneConfig {
                enabled: true,
                event_reorder: 1.0,
                ..Default::default()
            },
            1,
            8,
        );
        let batch: Vec<MonitorEvent> = (0..6).map(|i| ev(i, "r")).collect();
        let out = filter(&mut plane, 0, batch.clone());
        assert_eq!(out.len(), batch.len());
        let mut sorted_in: Vec<u64> = batch.iter().map(|e| e.at.cycle()).collect();
        let mut sorted_out: Vec<u64> = out.iter().map(|e| e.at.cycle()).collect();
        sorted_in.sort_unstable();
        sorted_out.sort_unstable();
        assert_eq!(sorted_in, sorted_out);
        assert!(plane.stats().events_reordered > 0);
    }

    #[test]
    fn crash_victims_are_seed_deterministic_and_distinct() {
        let config = FaultPlaneConfig {
            enabled: true,
            crashed_monitors: 3,
            crash_at: 1_000,
            ..Default::default()
        };
        let a = FaultPlane::new(config, 42, 8);
        let b = FaultPlane::new(config, 42, 8);
        assert_eq!(a.crashed_monitors(), b.crashed_monitors());
        assert_eq!(a.crashed_monitors().len(), 3);
        let mut sorted = a.crashed_monitors().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "victims must be distinct");
        // before crash_at nobody is dead; after, exactly the victims are
        for idx in 0..8 {
            assert!(!a.is_crashed(idx, SimTime::at_cycle(999)));
        }
        for &idx in a.crashed_monitors() {
            assert!(a.is_crashed(idx, SimTime::at_cycle(1_000)));
        }
        assert_eq!(a.stats().monitors_crashed, 3);
    }

    #[test]
    fn crash_count_saturates_at_fleet_size() {
        let plane = FaultPlane::new(
            FaultPlaneConfig {
                enabled: true,
                crashed_monitors: 99,
                ..Default::default()
            },
            7,
            4,
        );
        assert_eq!(plane.crashed_monitors().len(), 4);
    }

    #[test]
    fn retry_schedule_is_monotone_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: 100,
            max_backoff: 1_500,
        };
        let mut rng = DetRng::seed_from(9);
        for _ in 0..50 {
            let schedule = policy.schedule(&mut rng);
            assert_eq!(schedule.len(), 5);
            assert!(schedule.windows(2).all(|w| w[0] <= w[1]), "{schedule:?}");
            assert!(schedule.iter().all(|&d| d <= policy.max_backoff));
        }
    }

    #[test]
    fn single_attempt_policy_never_retries() {
        let policy = RetryPolicy {
            max_attempts: 1,
            base_backoff: 64,
            max_backoff: 1_024,
        };
        let mut rng = DetRng::seed_from(3);
        assert!(policy.schedule(&mut rng).is_empty());
    }

    #[test]
    fn same_seed_same_fault_decisions() {
        let config = FaultPlaneConfig::sweep_cell(0.3, 1, 100_000);
        let batch: Vec<MonitorEvent> = (0..20).map(|i| ev(i, "s")).collect();
        let run = |seed: u64| {
            let mut plane = FaultPlane::new(config, seed, 8);
            let mut out = Vec::new();
            for round in 0..5u64 {
                out.push(filter(&mut plane, round * 5_000, batch.clone()));
            }
            (out, *plane.stats())
        };
        assert_eq!(run(1234), run(1234));
        assert_ne!(run(1234).1, run(5678).1, "different seeds should differ");
    }

    #[test]
    fn sweep_cell_scales_with_loss() {
        let cell = FaultPlaneConfig::sweep_cell(0.2, 2, 50_000);
        assert!(cell.enabled);
        assert_eq!(cell.event_loss, 0.2);
        assert_eq!(cell.event_delay, 0.1);
        assert_eq!(cell.crashed_monitors, 2);
        assert_eq!(cell.crash_at, 50_000);
    }
}
