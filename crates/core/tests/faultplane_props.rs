//! Property tests for the fault channel: the fault plane must be a
//! *deterministic, conservative* adversary. Same seed ⇒ same fault
//! schedule; loss + delay + reorder + corruption never invents or
//! duplicates an event; the retry/backoff schedule is monotone and
//! bounded. These are the invariants the E11 determinism diff and the
//! campaign engine's thread-count invariance stand on.

use cres_monitor::{Detail, MonitorEvent, Severity, Subject};
use cres_platform::{FaultPlane, FaultPlaneConfig, RetryPolicy};
use cres_policy::DetectionCapability;
use cres_sim::{DetRng, NullSink, SimTime};
use proptest::prelude::*;

/// An event batch whose detail payloads are unique across the whole run,
/// so duplication is observable.
fn batch(round: u64, size: usize) -> Vec<MonitorEvent> {
    (0..size)
        .map(|i| {
            MonitorEvent::new(
                SimTime::at_cycle(round * 10_000 + i as u64),
                DetectionCapability::BusPolicing,
                Severity::Alert,
                Subject::Network,
                Detail::BusTapOverflow {
                    lost: round * 1_000 + i as u64,
                },
            )
        })
        .collect()
}

/// The unique per-event key, unchanged by in-transit corruption (the fault
/// plane only sets the `corrupted` flag and downgrades severity).
fn event_key(event: &MonitorEvent) -> u64 {
    match event.detail {
        Detail::BusTapOverflow { lost } => lost,
        _ => unreachable!("batches only carry BusTapOverflow details"),
    }
}

fn hostile_config(loss: f64, delay: f64, reorder: f64, corrupt: f64) -> FaultPlaneConfig {
    FaultPlaneConfig {
        enabled: true,
        event_loss: loss,
        event_delay: delay,
        max_delay_batches: 3,
        event_reorder: reorder,
        event_corrupt: corrupt,
        ..Default::default()
    }
}

/// Feeds `rounds` batches of `size` events and then drains held deliveries
/// with empty batches; returns everything delivered plus the final plane.
fn run_channel(
    config: FaultPlaneConfig,
    seed: u64,
    rounds: u64,
    size: usize,
) -> (Vec<MonitorEvent>, FaultPlane) {
    let mut plane = FaultPlane::new(config, seed, 8);
    let mut delivered = Vec::new();
    for round in 0..rounds {
        let mut events = batch(round, size);
        plane.filter_events(
            SimTime::at_cycle(round * 10_000),
            &mut events,
            &mut NullSink,
        );
        delivered.extend(events);
    }
    // Drain: every held event is released within `max_delay_batches`
    // fault-free rounds (the release path cannot re-delay).
    for extra in 0..=u64::from(config.max_delay_batches) {
        let mut events = Vec::new();
        plane.filter_events(
            SimTime::at_cycle((rounds + extra) * 10_000),
            &mut events,
            &mut NullSink,
        );
        delivered.extend(events);
    }
    assert!(!plane.pending(), "drain must empty the delay queue");
    (delivered, plane)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn same_seed_same_fault_schedule(
        seed in 0u64..1_000_000,
        loss in 0.0f64..0.6,
        delay in 0.0f64..0.6,
        reorder in 0.0f64..0.6,
        corrupt in 0.0f64..0.6,
        rounds in 1u64..6,
        size in 0usize..12
    ) {
        let config = hostile_config(loss, delay, reorder, corrupt);
        let (out_a, plane_a) = run_channel(config, seed, rounds, size);
        let (out_b, plane_b) = run_channel(config, seed, rounds, size);
        prop_assert_eq!(out_a, out_b, "delivered stream must be seed-deterministic");
        prop_assert_eq!(plane_a.stats(), plane_b.stats());
    }

    #[test]
    fn channel_never_duplicates_or_invents_events(
        seed in 0u64..1_000_000,
        loss in 0.0f64..0.6,
        delay in 0.0f64..0.6,
        reorder in 0.0f64..0.6,
        corrupt in 0.0f64..0.6,
        rounds in 1u64..6,
        size in 0usize..12
    ) {
        let config = hostile_config(loss, delay, reorder, corrupt);
        let (delivered, plane) = run_channel(config, seed, rounds, size);
        let total = rounds as usize * size;
        let mut seen = std::collections::BTreeSet::new();
        for event in &delivered {
            prop_assert!(
                seen.insert(event_key(event)),
                "event {:?} delivered twice",
                event.detail
            );
        }
        // Conservation: every injected event is delivered or counted lost.
        prop_assert_eq!(
            delivered.len() as u64 + plane.stats().events_lost,
            total as u64
        );
        prop_assert!(delivered.len() <= total);
    }

    #[test]
    fn lossless_channel_preserves_every_event(
        seed in 0u64..1_000_000,
        delay in 0.0f64..1.0,
        reorder in 0.0f64..1.0,
        rounds in 1u64..6,
        size in 0usize..12
    ) {
        // Delay and reorder alone must be a pure permutation.
        let config = hostile_config(0.0, delay, reorder, 0.0);
        let (delivered, plane) = run_channel(config, seed, rounds, size);
        prop_assert_eq!(delivered.len() as u64, rounds * size as u64);
        prop_assert_eq!(plane.stats().events_lost, 0);
    }

    #[test]
    fn retry_schedule_is_monotone_bounded_and_sized(
        max_attempts in 1u32..9,
        base_backoff in 0u64..2_048,
        max_backoff in 1u64..5_000,
        seed in 0u64..1_000_000
    ) {
        let policy = RetryPolicy { max_attempts, base_backoff, max_backoff };
        let schedule = policy.schedule(&mut DetRng::seed_from(seed));
        prop_assert_eq!(schedule.len(), max_attempts as usize - 1);
        prop_assert!(
            schedule.windows(2).all(|w| w[0] <= w[1]),
            "schedule not monotone: {:?}",
            schedule
        );
        prop_assert!(
            schedule.iter().all(|&d| d <= max_backoff),
            "schedule exceeds max_backoff {}: {:?}",
            max_backoff,
            schedule
        );
        // And it is a pure function of the RNG stream.
        prop_assert_eq!(schedule, policy.schedule(&mut DetRng::seed_from(seed)));
    }

    #[test]
    fn crash_victims_are_distinct_and_in_range(
        seed in 0u64..1_000_000,
        fleet in 1usize..16,
        requested in 0u32..20
    ) {
        let config = FaultPlaneConfig {
            enabled: true,
            crashed_monitors: requested,
            crash_at: 1,
            ..Default::default()
        };
        let plane = FaultPlane::new(config, seed, fleet);
        let victims = plane.crashed_monitors();
        prop_assert_eq!(victims.len(), (requested as usize).min(fleet));
        prop_assert!(victims.iter().all(|&v| v < fleet));
        let mut sorted = victims.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), victims.len(), "victims must be distinct");
    }
}
