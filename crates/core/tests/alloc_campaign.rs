//! The campaign-level allocation ratchet: a pooled scenario run on a warm
//! [`PlatformPool`] must stay under a hard allocation ceiling.
//!
//! A fresh 100k-cycle platform slice used to cost ~677k allocations, almost
//! all of it re-provisioning (RSA keygen + image/TA signing) and rebuilding
//! platform buffers per run. With the pool, provisioning is cached per cell
//! and the platform is recycled through [`cres_platform::Platform::reset`],
//! so a warm pooled run must do none of that work again. The ceiling here
//! (and the matching `platform_slice_100k` gate in `bench_report`) is the
//! ratchet: it can go down, never up.
//!
//! Also pins the warm evidence-append path at **zero** allocations — the
//! record's category/payload strings are inline [`cres_ssm::EvText`] now,
//! and the incremental Merkle accumulator appends without rebuilding any
//! tree.

use cres_platform::config::{PlatformConfig, PlatformProfile};
use cres_platform::runner::{Scenario, ScenarioRunner};
use cres_platform::PlatformPool;
use cres_sim::{SimDuration, SimTime};
use cres_ssm::EvidenceStore;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Hard ceiling for one warm pooled 100k-cycle run. Headroom over the
/// measured count (~25k in release) without letting re-provisioning
/// (~600k) or wholesale buffer rebuilds sneak back in.
const POOLED_RUN_ALLOC_CEILING: u64 = 50_000;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn slice_scenario() -> Scenario {
    Scenario::quiet(SimDuration::cycles(100_000))
}

#[test]
fn warm_pooled_run_stays_under_alloc_ceiling() {
    let config = PlatformConfig::new(PlatformProfile::CyberResilient, 42);
    let mut pool = PlatformPool::new();

    // Warm-up: provisions the cell, builds the platform, grows every
    // lazily sized buffer.
    let warm = ScenarioRunner::new(config).run_pooled(&mut pool, slice_scenario());
    assert!(warm.boot_ok);

    let before = ALLOCS.load(Ordering::Relaxed);
    let report = ScenarioRunner::new(config).run_pooled(&mut pool, slice_scenario());
    let after = ALLOCS.load(Ordering::Relaxed);

    assert!(report.boot_ok);
    assert_eq!(report, warm, "pooled rerun diverged from its own warm-up");
    let allocs = after - before;
    assert!(
        allocs <= POOLED_RUN_ALLOC_CEILING,
        "warm pooled 100k-cycle run performed {allocs} heap allocations \
         (ceiling {POOLED_RUN_ALLOC_CEILING}); the provisioning cache or \
         platform recycling regressed"
    );
    let (hits, misses) = pool.provision_cache_stats();
    assert_eq!((hits, misses), (1, 1), "provisioning was not cached");
}

#[test]
fn warm_evidence_append_is_allocation_free() {
    let mut store = EvidenceStore::new(b"alloc-ratchet-key");
    // Warm past the 1024→2048 Vec doubling so the measured window sits
    // strictly inside existing capacity.
    for i in 0..1152u64 {
        store.append(SimTime::at_cycle(i), "bench", "payload line");
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 1152..1408u64 {
        store.append(SimTime::at_cycle(i), "bench", "payload line");
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "warm evidence append allocated {} times over 256 records; \
         category/payload must stay inline and the accumulator must not \
         rebuild the tree",
        after - before
    );
    assert_eq!(store.records().len(), 1408);
}
