//! Property tests pinning the pooling contract: a run on a recycled
//! platform ([`cres_platform::Platform::reset`] via
//! [`cres_platform::PlatformPool`]) is **bit-identical** to a run on a
//! freshly built platform, for arbitrary `(config, config)` pairs — the
//! dirty platform's previous cell must leave no residue in the next run's
//! report, evidence or telemetry.

use cres_attacks::NetworkFloodAttack;
use cres_platform::config::{PlatformConfig, PlatformProfile};
use cres_platform::runner::{Scenario, ScenarioRunner};
use cres_platform::PlatformPool;
use cres_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn profile(tag: u8) -> PlatformProfile {
    match tag % 3 {
        0 => PlatformProfile::CyberResilient,
        1 => PlatformProfile::PassiveTrust,
        _ => PlatformProfile::TeeShared,
    }
}

fn scenario(attack: bool) -> Scenario {
    let scenario = Scenario::quiet(SimDuration::cycles(60_000));
    if attack {
        scenario.attack(
            SimTime::at_cycle(20_000),
            SimDuration::cycles(2_000),
            Box::new(NetworkFloodAttack::new(300, 4)),
        )
    } else {
        scenario
    }
}

proptest! {
    // Each case runs three full simulations (incl. RSA keygen per fresh
    // cell), so the case count stays deliberately small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pooled_run_is_bit_identical_to_fresh(
        tag_a in any::<u8>(),
        seed_a in 0u64..32,
        tag_b in any::<u8>(),
        seed_b in 0u64..32,
        attack_a in any::<bool>(),
        attack_b in any::<bool>(),
    ) {
        let config_a = PlatformConfig::new(profile(tag_a), seed_a);
        let config_b = PlatformConfig::new(profile(tag_b), seed_b);

        // Dirty the pool with a full run on cell A, then reuse its
        // platform for cell B.
        let mut pool = PlatformPool::new();
        let _ = ScenarioRunner::new(config_a).run_pooled(&mut pool, scenario(attack_a));
        let pooled = ScenarioRunner::new(config_b).run_pooled(&mut pool, scenario(attack_b));

        let fresh = ScenarioRunner::new(config_b).run(scenario(attack_b));

        prop_assert_eq!(&pooled, &fresh);
        // Bit-identical all the way to the serialised artefact the
        // experiments and goldens consume.
        prop_assert_eq!(pooled.to_json(), fresh.to_json());
    }

    #[test]
    fn repeated_same_cell_reuse_stays_stable(tag in any::<u8>(), seed in 0u64..32) {
        // Same cell run three times through one pool: every pooled run
        // must equal the fresh baseline (no drift from repeated resets).
        let config = PlatformConfig::new(profile(tag), seed);
        let fresh = ScenarioRunner::new(config).run(scenario(true));
        let mut pool = PlatformPool::new();
        for round in 0..3 {
            let pooled = ScenarioRunner::new(config).run_pooled(&mut pool, scenario(true));
            prop_assert_eq!(&pooled, &fresh, "drift on pooled round {}", round);
        }
        let (hits, misses) = pool.provision_cache_stats();
        prop_assert_eq!((hits, misses), (2, 1));
    }
}
