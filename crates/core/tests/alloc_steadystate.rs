//! Proof that the steady-state monitor→SSM→evidence tick is
//! allocation-free.
//!
//! A counting global allocator wraps `System`; after warming the platform
//! up (so every lazily grown buffer — the event buffer, the fault-plane
//! scratch, monitor ring cursors, SSM correlation windows — has reached
//! its steady capacity), one full no-incident tick must perform **zero**
//! heap allocations: benign bus traffic, a full `sample_monitors_buffered`
//! pass over every monitor, and `ingest_sampled` through the SSM.
//!
//! This is the tentpole contract of the allocation-free hot path: if any
//! future change re-introduces a per-tick `String`, `Vec`, or `format!`,
//! this test fails with the exact allocation count.

use cres_platform::{Platform, PlatformConfig, PlatformProfile};
use cres_sim::SimTime;
use cres_soc::addr::MasterId;
use cres_soc::soc::layout;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One steady-state tick: kick the watchdog, issue benign in-policy bus
/// traffic, sample every monitor into the reusable buffer, ingest.
fn tick(p: &mut Platform, n: u64) -> usize {
    let now = SimTime::at_cycle(n * 5_000);
    p.soc.watchdog.kick(now);
    let sram = layout::SRAM.0;
    for k in 0..32u64 {
        let _ = p.soc.bus.write(
            SimTime::at_cycle(n * 5_000 - 32 + k),
            MasterId::CPU0,
            sram.offset(64 + 8 * k),
            &[0u8; 8],
            &mut p.soc.mem,
        );
    }
    let collected = p.sample_monitors_buffered(now);
    let plans = p.ingest_sampled(now);
    assert!(plans.is_empty(), "steady-state tick raised a response plan");
    collected
}

#[test]
fn steady_state_tick_is_allocation_free() {
    let mut p = Platform::new(PlatformConfig::new(PlatformProfile::CyberResilient, 7));
    p.train_syscall_monitor(50);

    // Warm-up: let every internal buffer reach steady capacity.
    for n in 1..=32u64 {
        let collected = tick(&mut p, n);
        assert_eq!(collected, 0, "warm-up tick {n} emitted events");
    }

    // The measured tick must not touch the heap at all.
    let before = ALLOCS.load(Ordering::Relaxed);
    let collected = tick(&mut p, 33);
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(collected, 0, "measured tick emitted events");
    assert_eq!(
        after - before,
        0,
        "steady-state tick performed {} heap allocations; the hot path \
         must stay allocation-free",
        after - before
    );
}
