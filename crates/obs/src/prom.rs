//! Prometheus text-format exposition.
//!
//! Renders a frozen [`TelemetrySnapshot`] — counters, gauges and
//! histograms from the metrics registry plus the trace-ring and
//! per-stage aggregates — in the Prometheus text exposition format, and
//! a [`FleetVerdict`] as fleet-level aggregates. Histograms use
//! cumulative-bucket semantics ([`HistogramSnapshot::cumulative_buckets`]
//! [cres_platform::telemetry::HistogramSnapshot::cumulative_buckets]):
//! each `_bucket{le="N"}` counts observations ≤ N, the `+Inf` bucket
//! equals `_count`, and `_sum` carries the observation sum.
//!
//! Output is canonical bytes: fixed section order, registry name order
//! (already sorted), shortest-round-trip float formatting — so two runs
//! of the same seed diff empty, which is exactly how CI consumes it.

use crate::fleet::FleetObservation;
use cres_fleet::{FleetIncident, FleetVerdict};
use cres_platform::telemetry::TelemetrySnapshot;
use std::fmt::Write as _;

/// Sanitizes a registry metric name for Prometheus: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is prefixed.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn type_line(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders one device run's telemetry snapshot as a Prometheus text
/// exposition (the `cres_` namespace).
pub fn prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::with_capacity(1024);

    // trace-ring accounting
    type_line(&mut out, "cres_trace_spans_recorded_total", "counter");
    let _ = writeln!(
        out,
        "cres_trace_spans_recorded_total {}",
        snapshot.spans_recorded
    );
    type_line(&mut out, "cres_trace_spans_dropped_total", "counter");
    let _ = writeln!(
        out,
        "cres_trace_spans_dropped_total {}",
        snapshot.spans_dropped
    );
    type_line(&mut out, "cres_instrumentation_cycles_total", "counter");
    let _ = writeln!(
        out,
        "cres_instrumentation_cycles_total {}",
        snapshot.instrumentation_cycles
    );

    // per-stage aggregates (pipeline order, zero-count stages omitted —
    // matching the snapshot itself)
    if !snapshot.stages.is_empty() {
        type_line(&mut out, "cres_stage_spans_total", "counter");
        for stage in &snapshot.stages {
            let _ = writeln!(
                out,
                "cres_stage_spans_total{{stage=\"{}\"}} {}",
                stage.stage.name(),
                stage.count
            );
        }
        type_line(&mut out, "cres_stage_cycles_total", "counter");
        for stage in &snapshot.stages {
            let _ = writeln!(
                out,
                "cres_stage_cycles_total{{stage=\"{}\"}} {}",
                stage.stage.name(),
                stage.cycles
            );
        }
    }

    // registry counters / gauges / histograms, name order
    for (name, value) in &snapshot.counters {
        let name = format!("cres_{}_total", sanitize(name));
        type_line(&mut out, &name, "counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = format!("cres_{}", sanitize(name));
        type_line(&mut out, &name, "gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for histogram in &snapshot.histograms {
        let name = format!("cres_{}", sanitize(&histogram.name));
        type_line(&mut out, &name, "histogram");
        for (bound, cumulative) in histogram.cumulative_buckets() {
            let le = match bound {
                Some(bound) => bound.to_string(),
                None => "+Inf".into(),
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_sum {}", histogram.sum);
        let _ = writeln!(out, "{name}_count {}", histogram.total);
    }
    out
}

/// Renders a fleet observation as Prometheus fleet aggregates.
///
/// Everything emitted is a pure function of the fleet config — devices,
/// detection outcomes, quarantines, incidents by kind, availability,
/// evidence leaves — so the bytes are identical across worker counts.
/// Schedule-dependent accounting (pool hit rate, throughput) is
/// deliberately excluded from this artifact; it lives in
/// [`pool_prometheus`], which callers append only to human-facing output.
pub fn fleet_prometheus(verdict: &FleetVerdict) -> String {
    let mut out = String::with_capacity(1024);
    for (name, value) in [
        ("cres_fleet_devices", u64::from(verdict.devices)),
        ("cres_fleet_attacked", u64::from(verdict.attacked)),
        ("cres_fleet_detected", u64::from(verdict.detected)),
        ("cres_fleet_missed", u64::from(verdict.missed)),
        ("cres_fleet_attacker_wins", verdict.attacker_wins),
        ("cres_fleet_quarantined", u64::from(verdict.quarantined)),
        ("cres_fleet_evidence_leaves", verdict.evidence_leaves),
    ] {
        type_line(&mut out, name, "gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    type_line(&mut out, "cres_fleet_availability", "gauge");
    let _ = writeln!(
        out,
        "cres_fleet_availability{{kind=\"mean\"}} {}",
        verdict.mean_availability
    );
    let _ = writeln!(
        out,
        "cres_fleet_availability{{kind=\"min\"}} {}",
        verdict.min_availability
    );
    let campaigns = verdict
        .incidents
        .iter()
        .filter(|i| matches!(i, FleetIncident::CoordinatedCampaign { .. }))
        .count();
    type_line(&mut out, "cres_fleet_incidents", "gauge");
    let _ = writeln!(
        out,
        "cres_fleet_incidents{{kind=\"coordinated-campaign\"}} {campaigns}"
    );
    let _ = writeln!(
        out,
        "cres_fleet_incidents{{kind=\"lateral-movement\"}} {}",
        verdict.incidents.len() - campaigns
    );
    type_line(&mut out, "cres_fleet_health_devices", "gauge");
    for (state, count) in &verdict.health {
        let _ = writeln!(
            out,
            "cres_fleet_health_devices{{state=\"{state}\"}} {count}"
        );
    }
    out
}

/// Schedule-dependent pool warmth gauges (hit rate varies with worker
/// count and work-stealing order): append to operator-facing output only,
/// never to determinism-diffed artifacts.
pub fn pool_prometheus(observation: &FleetObservation) -> String {
    let pool = observation.report.pool_stats();
    let mut out = String::new();
    type_line(&mut out, "cres_fleet_pool_hit_rate", "gauge");
    let _ = writeln!(out, "cres_fleet_pool_hit_rate {}", pool.hit_rate());
    type_line(&mut out, "cres_fleet_pool_provision_hits", "gauge");
    let _ = writeln!(
        out,
        "cres_fleet_pool_provision_hits {}",
        pool.provision_hits
    );
    type_line(&mut out, "cres_fleet_pool_provision_misses", "gauge");
    let _ = writeln!(
        out,
        "cres_fleet_pool_provision_misses {}",
        pool.provision_misses
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_replaces_and_guards() {
        assert_eq!(
            sanitize("incidents.CodeInjection"),
            "incidents_CodeInjection"
        );
        assert_eq!(sanitize("faultplane.events_lost"), "faultplane_events_lost");
        assert_eq!(sanitize("0weird name"), "_0weird_name");
    }
}
