//! Artifact validators — the `obs_lint` CI gate.
//!
//! These checks read exported *bytes*, not in-memory structures, so they
//! catch exactly the failures a downstream consumer would hit: a JSONL
//! line out of `(device, cycle, seq)` order, two Chrome events
//! overlapping on one track, a histogram whose cumulative buckets run
//! backwards. They deliberately parse only the canonical encodings the
//! exporters emit (fixed key order, no whitespace) — an artifact that
//! fails to scan *is* malformed, because canonical bytes are the format
//! contract.

/// Scans `"key":<u64>` out of a canonical JSON line.
fn scan_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Scans `"key":"<str>"` out of a canonical JSON line (no escape
/// handling — callers only scan keys with restricted vocabularies).
fn scan_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Validates a JSONL event log: every line an object with the `v:1`
/// envelope, a known `k`, and strict `(d, c, s)` ordering across lines.
///
/// Returns the record count, or the first violation as
/// `Err("line N: what")`.
pub fn check_jsonl(text: &str) -> Result<usize, String> {
    const KINDS: [&str; 6] = [
        "span",
        "fault",
        "policy",
        "seal",
        "device",
        "fleet-incident",
    ];
    let mut previous: Option<(u64, u64, u64)> = None;
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if !line.starts_with("{\"v\":1,") || !line.ends_with('}') {
            return Err(format!("line {n}: not a v1 envelope object"));
        }
        let device = scan_u64(line, "d").ok_or(format!("line {n}: missing \"d\""))?;
        let cycle = scan_u64(line, "c").ok_or(format!("line {n}: missing \"c\""))?;
        let seq = scan_u64(line, "s").ok_or(format!("line {n}: missing \"s\""))?;
        let kind = scan_str(line, "k").ok_or(format!("line {n}: missing \"k\""))?;
        if !KINDS.contains(&kind) {
            return Err(format!("line {n}: unknown kind {kind:?}"));
        }
        let key = (device, cycle, seq);
        if let Some(prev) = previous {
            if key <= prev {
                return Err(format!(
                    "line {n}: (d,c,s) {key:?} not after {prev:?} — ordering violated"
                ));
            }
        }
        previous = Some(key);
        count += 1;
    }
    Ok(count)
}

/// Validates a Chrome trace document: the `traceEvents` wrapper, and for
/// every `"ph":"X"` event a positive duration and no overlap with the
/// previous event on the same `(pid, tid)` track.
///
/// Returns the duration-event count, or the first violation.
pub fn check_chrome(text: &str) -> Result<usize, String> {
    if !text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[") || !text.ends_with("]}") {
        return Err("missing traceEvents wrapper".into());
    }
    let mut cursors: std::collections::BTreeMap<(u64, u64), u64> =
        std::collections::BTreeMap::new();
    let mut count = 0usize;
    // canonical output: one event object per `{...}` — split on "},{"
    for (i, event) in text["{\"displayTimeUnit\":\"ms\",\"traceEvents\":[".len()..]
        .trim_end_matches("]}")
        .split("},{")
        .enumerate()
    {
        let n = i + 1;
        match scan_str(event, "ph") {
            Some("M") => continue,
            Some("X") => {}
            Some(other) => return Err(format!("event {n}: unknown phase {other:?}")),
            None => {
                if event.is_empty() {
                    continue; // empty traceEvents
                }
                return Err(format!("event {n}: missing \"ph\""));
            }
        }
        let pid = scan_u64(event, "pid").ok_or(format!("event {n}: missing pid"))?;
        let tid = scan_u64(event, "tid").ok_or(format!("event {n}: missing tid"))?;
        let ts = scan_u64(event, "ts").ok_or(format!("event {n}: missing ts"))?;
        let dur = scan_u64(event, "dur").ok_or(format!("event {n}: missing dur"))?;
        if dur == 0 {
            return Err(format!("event {n}: zero duration"));
        }
        let cursor = cursors.entry((pid, tid)).or_insert(0);
        if ts < *cursor {
            return Err(format!(
                "event {n}: ts {ts} overlaps track ({pid},{tid}) cursor {cursor}"
            ));
        }
        *cursor = ts + dur;
        count += 1;
    }
    Ok(count)
}

/// Validates a Prometheus exposition: every sample line parses, every
/// metric has a preceding `# TYPE`, and every histogram's buckets are
/// monotone non-decreasing with the `+Inf` bucket equal to `_count`.
///
/// Returns the sample count, or the first violation.
pub fn check_prom(text: &str) -> Result<usize, String> {
    let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    // per-histogram: (last bucket value, +Inf value)
    let mut hist: std::collections::BTreeMap<String, (u64, Option<u64>)> =
        std::collections::BTreeMap::new();
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or_default();
            let kind = parts.next().unwrap_or_default();
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown type {kind:?}"));
            }
            typed.insert(name.to_string());
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {n}: no sample value"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("line {n}: unparsable value {value:?}"));
        }
        let name = name_and_labels.split('{').next().unwrap_or(name_and_labels);
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !typed.contains(name) && !typed.contains(base) {
            return Err(format!("line {n}: sample {name:?} has no # TYPE"));
        }
        if name.ends_with("_bucket") {
            let le = name_and_labels
                .split_once("le=\"")
                .and_then(|(_, rest)| rest.split('"').next())
                .ok_or(format!("line {n}: bucket without le label"))?;
            let bucket: u64 = value
                .parse()
                .map_err(|_| format!("line {n}: non-integer bucket count"))?;
            let entry = hist.entry(base.to_string()).or_insert((0, None));
            if bucket < entry.0 {
                return Err(format!(
                    "line {n}: bucket le={le} count {bucket} below previous {}",
                    entry.0
                ));
            }
            entry.0 = bucket;
            if le == "+Inf" {
                entry.1 = Some(bucket);
            }
        } else if name.ends_with("_count") {
            let total: u64 = value
                .parse()
                .map_err(|_| format!("line {n}: non-integer count"))?;
            if let Some((_, inf)) = hist.get(base) {
                match inf {
                    Some(inf) if *inf == total => {}
                    Some(inf) => {
                        return Err(format!(
                            "line {n}: +Inf bucket {inf} != count {total} for {base:?}"
                        ));
                    }
                    None => return Err(format!("line {n}: histogram {base:?} missing +Inf")),
                }
            }
        }
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_ordering_and_schema_enforced() {
        let good = "{\"v\":1,\"d\":0,\"c\":5,\"s\":0,\"k\":\"fault\",\"event\":\"event-lost\",\"code\":1}\n\
                    {\"v\":1,\"d\":0,\"c\":5,\"s\":1,\"k\":\"policy\",\"event\":\"tier-raised\",\"code\":1}\n\
                    {\"v\":1,\"d\":1,\"c\":2,\"s\":0,\"k\":\"seal\",\"root\":\"00\",\"covered\":1}\n";
        assert_eq!(check_jsonl(good), Ok(3));
        let reordered = "{\"v\":1,\"d\":1,\"c\":2,\"s\":0,\"k\":\"seal\",\"root\":\"00\",\"covered\":1}\n\
                         {\"v\":1,\"d\":0,\"c\":5,\"s\":0,\"k\":\"fault\",\"event\":\"x\",\"code\":1}\n";
        assert!(check_jsonl(reordered).unwrap_err().contains("ordering"));
        assert!(check_jsonl("{\"v\":2,\"d\":0}\n").is_err());
        assert!(check_jsonl("{\"v\":1,\"d\":0,\"c\":1,\"s\":0,\"k\":\"nope\"}\n").is_err());
    }

    #[test]
    fn chrome_overlap_detected() {
        let good = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                    {\"name\":\"a\",\"cat\":\"pipeline\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":5,\"args\":{}},\
                    {\"name\":\"b\",\"cat\":\"pipeline\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,\"dur\":1,\"args\":{}}]}";
        assert_eq!(check_chrome(good), Ok(2));
        let overlap = good.replace("\"ts\":5", "\"ts\":4");
        assert!(check_chrome(&overlap).unwrap_err().contains("overlaps"));
        assert!(check_chrome("not a trace").is_err());
    }

    #[test]
    fn prom_cumulative_buckets_enforced() {
        let good = "# TYPE cres_x histogram\n\
                    cres_x_bucket{le=\"10\"} 2\n\
                    cres_x_bucket{le=\"100\"} 5\n\
                    cres_x_bucket{le=\"+Inf\"} 7\n\
                    cres_x_sum 420\n\
                    cres_x_count 7\n";
        assert!(check_prom(good).is_ok());
        let backwards = good.replace("cres_x_bucket{le=\"100\"} 5", "cres_x_bucket{le=\"100\"} 1");
        assert!(check_prom(&backwards)
            .unwrap_err()
            .contains("below previous"));
        let short = good.replace("cres_x_count 7", "cres_x_count 9");
        assert!(check_prom(&short).unwrap_err().contains("!= count"));
        assert!(check_prom("cres_untyped 1\n")
            .unwrap_err()
            .contains("no # TYPE"));
    }
}
