//! The structured JSONL event log.
//!
//! One schema-versioned JSON object per line. Every record starts with
//! the same envelope, in fixed key order:
//!
//! ```text
//! {"v":1,"d":<device>,"c":<cycle>,"s":<seq>,"k":"<kind>", ...}
//! ```
//!
//! * `v` — schema version (this module emits 1);
//! * `d` — device id (fleet-scope records use one past the last device);
//! * `c` — sim-cycle timestamp;
//! * `s` — per-device sequence number, dense from 0 in emission order;
//! * `k` — record kind: `span`, `fault`, `policy`, `seal`, `device` or
//!   `fleet-incident` (kind-specific fields follow; see `EXPERIMENTS.md`
//!   §E16 for the field-by-field schema).
//!
//! Lines are strictly ordered by `(d, c, s)` — the invariant the
//! proptests and the `obs_lint` gate enforce — so fleet-scale logs from
//! any worker count merge to identical bytes.

use crate::capture::ObsCapture;
use crate::{hex32, json_escape, push_u64};
use cres_sim::Stage;
use std::fmt::Write as _;

/// Decodes a [`Stage::FaultPlane`] span arg (`cres_sim::fault_code`) to
/// its stable event name.
pub fn fault_name(code: u32) -> &'static str {
    match code {
        1 => "event-lost",
        2 => "event-delayed",
        3 => "event-reordered",
        4 => "event-corrupted",
        5 => "monitor-stalled",
        6 => "monitor-crashed",
        7 => "response-dropped",
        8 => "delivery-retry",
        9 => "delivery-recovered",
        10 => "monitor-quarantined",
        11 => "sensing-degraded",
        _ => "unknown",
    }
}

/// Decodes a [`Stage::Policy`] span arg (`cres_sim::policy_code`) to its
/// stable event name.
pub fn policy_name(code: u32) -> &'static str {
    match code {
        1 => "tier-raised",
        2 => "tier-lowered",
        3 => "breaker-opened",
        4 => "breaker-half-open",
        5 => "breaker-closed",
        6 => "action-suppressed",
        _ => "unknown",
    }
}

/// The kind-specific payload of one log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEvent {
    /// One pipeline trace span.
    Span {
        /// The pipeline stage.
        stage: Stage,
        /// Stage-specific argument.
        arg: u32,
        /// Modelled cycle cost.
        cycles: u64,
    },
    /// One fault-plane transition (a decoded [`Stage::FaultPlane`] span).
    Fault {
        /// Fault code (`cres_sim::fault_code`).
        code: u32,
    },
    /// One policy decision (a decoded [`Stage::Policy`] span).
    Policy {
        /// Policy code (`cres_sim::policy_code`).
        code: u32,
    },
    /// One evidence seal.
    Seal {
        /// Merkle root of the seal.
        root: [u8; 32],
        /// Records the seal covers.
        covered: u64,
    },
    /// One per-device fleet summary.
    Device {
        /// Topology profile name.
        profile: String,
        /// Attack signature, when the device carried one.
        attack: Option<String>,
        /// First matching detection, cycles.
        detected: Option<u64>,
        /// Service availability over the run.
        availability: f64,
        /// Incidents classified on-device.
        incidents: u64,
        /// Whether the on-device evidence chain verified.
        chain_ok: bool,
        /// The summary digest folded into the fleet evidence root.
        digest: [u8; 32],
    },
    /// One fleet-level incident.
    FleetIncident {
        /// `"coordinated-campaign"` or `"lateral-movement"`.
        kind: &'static str,
        /// Correlated attack signature.
        signature: String,
        /// Carrier devices (campaign) or chain length (lateral).
        devices: u32,
        /// Campaign: carriers detected on-device; lateral: chain onset.
        detail: u64,
    },
}

/// One fully-addressed log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Device id (`d`).
    pub device: u32,
    /// Sim-cycle timestamp (`c`).
    pub cycle: u64,
    /// Per-device sequence number (`s`).
    pub seq: u32,
    /// The payload.
    pub event: LogEvent,
}

impl LogRecord {
    /// Renders the record as one canonical JSONL line (no newline).
    pub fn line(&self) -> String {
        let mut out = String::with_capacity(96);
        self.write_line(&mut out);
        out
    }

    /// Appends the canonical line to `out` (no newline, no per-record
    /// allocation, no `fmt` on the high-volume arms — the bulk-export
    /// path `write_jsonl` uses).
    pub fn write_line(&self, out: &mut String) {
        out.push_str("{\"v\":1,\"d\":");
        push_u64(out, u64::from(self.device));
        out.push_str(",\"c\":");
        push_u64(out, self.cycle);
        out.push_str(",\"s\":");
        push_u64(out, u64::from(self.seq));
        match &self.event {
            LogEvent::Span { stage, arg, cycles } => {
                out.push_str(",\"k\":\"span\",\"stage\":\"");
                out.push_str(stage.name());
                out.push_str("\",\"arg\":");
                push_u64(out, u64::from(*arg));
                out.push_str(",\"cycles\":");
                push_u64(out, *cycles);
            }
            LogEvent::Fault { code } => {
                out.push_str(",\"k\":\"fault\",\"event\":\"");
                out.push_str(fault_name(*code));
                out.push_str("\",\"code\":");
                push_u64(out, u64::from(*code));
            }
            LogEvent::Policy { code } => {
                out.push_str(",\"k\":\"policy\",\"event\":\"");
                out.push_str(policy_name(*code));
                out.push_str("\",\"code\":");
                push_u64(out, u64::from(*code));
            }
            LogEvent::Seal { root, covered } => {
                let _ = write!(
                    out,
                    ",\"k\":\"seal\",\"root\":\"{}\",\"covered\":{covered}",
                    hex32(root)
                );
            }
            LogEvent::Device {
                profile,
                attack,
                detected,
                availability,
                incidents,
                chain_ok,
                digest,
            } => {
                let _ = write!(
                    out,
                    ",\"k\":\"device\",\"profile\":\"{}\",\"attack\":{},\"detected\":{},\
                     \"availability\":{availability},\"incidents\":{incidents},\
                     \"chain_ok\":{chain_ok},\"digest\":\"{}\"",
                    json_escape(profile),
                    match attack {
                        Some(name) => format!("\"{}\"", json_escape(name)),
                        None => "null".into(),
                    },
                    match detected {
                        Some(cycle) => cycle.to_string(),
                        None => "null".into(),
                    },
                    hex32(digest)
                );
            }
            LogEvent::FleetIncident {
                kind,
                signature,
                devices,
                detail,
            } => {
                let _ = write!(
                    out,
                    ",\"k\":\"fleet-incident\",\"type\":\"{kind}\",\"signature\":\"{}\",\
                     \"devices\":{devices},\"detail\":{detail}",
                    json_escape(signature)
                );
            }
        }
        out.push('}');
    }
}

/// Builds one device's log records from its capture: every trace span
/// (fault-plane and policy spans decoded to their event vocabulary) plus
/// every evidence seal, merged by cycle and densely sequenced.
pub fn device_records(capture: &ObsCapture) -> Vec<LogRecord> {
    // The ring records in *processing* order, and the fault plane can
    // deliver an event late — a span processed at cycle 125k may carry
    // its origin timestamp 120k — so the spans are only *mostly* cycle-
    // ordered and a real sort is required. It is a stable sort over a
    // nearly-sorted sequence (cheap), and stability is load-bearing
    // twice: same-cycle spans keep recording order, and seals (appended
    // after all spans) land after same-cycle spans.
    let mut staged: Vec<(u64, LogEvent)> =
        Vec::with_capacity(capture.spans.len() + capture.seals.len());
    for span in &capture.spans {
        let event = match span.stage {
            Stage::FaultPlane => LogEvent::Fault { code: span.arg },
            Stage::Policy => LogEvent::Policy { code: span.arg },
            stage => LogEvent::Span {
                stage,
                arg: span.arg,
                cycles: span.cycles,
            },
        };
        staged.push((span.at.cycle(), event));
    }
    for seal in &capture.seals {
        staged.push((
            seal.at.cycle(),
            LogEvent::Seal {
                root: seal.root,
                covered: seal.covered,
            },
        ));
    }
    staged.sort_by_key(|(cycle, _)| *cycle);
    staged
        .into_iter()
        .enumerate()
        .map(|(seq, (cycle, event))| LogRecord {
            device: capture.device,
            cycle,
            seq: seq as u32,
            event,
        })
        .collect()
}

/// Renders records as a JSONL document (one line each, trailing newline).
///
/// # Panics
///
/// Debug-asserts the strict `(device, cycle, seq)` ordering contract.
pub fn write_jsonl(records: &[LogRecord]) -> String {
    debug_assert!(
        records
            .windows(2)
            .all(|w| (w[0].device, w[0].cycle, w[0].seq) < (w[1].device, w[1].cycle, w[1].seq)),
        "JSONL records out of (device, cycle, seq) order"
    );
    let mut out = String::with_capacity(records.len() * 96);
    for record in records {
        record.write_line(&mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_sim::{fault_code, policy_code};

    #[test]
    fn fault_and_policy_vocabularies_decode() {
        assert_eq!(fault_name(fault_code::EVENT_LOST), "event-lost");
        assert_eq!(fault_name(fault_code::SENSING_DEGRADED), "sensing-degraded");
        assert_eq!(policy_name(policy_code::TIER_RAISED), "tier-raised");
        assert_eq!(
            policy_name(policy_code::ACTION_SUPPRESSED),
            "action-suppressed"
        );
        assert_eq!(fault_name(99), "unknown");
        assert_eq!(policy_name(99), "unknown");
    }

    #[test]
    fn lines_are_canonical_and_escaped() {
        let seal = LogRecord {
            device: 3,
            cycle: 250_000,
            seq: 7,
            event: LogEvent::Seal {
                root: [0xab; 32],
                covered: 41,
            },
        };
        assert_eq!(
            seal.line(),
            format!(
                "{{\"v\":1,\"d\":3,\"c\":250000,\"s\":7,\"k\":\"seal\",\"root\":\"{}\",\"covered\":41}}",
                "ab".repeat(32)
            )
        );
        let device = LogRecord {
            device: 0,
            cycle: 1,
            seq: 0,
            event: LogEvent::Device {
                profile: "cyber\"resilient".into(),
                attack: None,
                detected: None,
                availability: 0.5,
                incidents: 0,
                chain_ok: true,
                digest: [0; 32],
            },
        };
        assert!(device.line().contains("cyber\\\"resilient"));
        assert!(device.line().contains("\"attack\":null"));
    }
}
