//! Post-run capture: everything the exporters read, taken off a finished
//! platform in one place.
//!
//! The report's telemetry snapshot keeps only a 16-span tail; the full
//! trace ring, the evidence chain and the seal history live on the
//! [`Platform`]. [`ObsCapture`] copies them out after
//! [`ScenarioRunner::run_keep`][cres_platform::ScenarioRunner::run_keep]
//! returns, so exporters work on plain owned data with no live borrows of
//! simulation state.

use cres_platform::telemetry::TraceSpan;
use cres_platform::{Platform, RunReport};
use cres_ssm::{EvidenceRecord, SealInfo};

/// One device's exportable run history.
#[derive(Debug, Clone)]
pub struct ObsCapture {
    /// Device id (0 for single-device runs).
    pub device: u32,
    /// The scored report (metrics registry, availability, outcomes).
    pub report: RunReport,
    /// Every span retained by the trace ring, oldest first.
    pub spans: Vec<TraceSpan>,
    /// The evidence seal history, oldest first.
    pub seals: Vec<SealInfo>,
    /// The full evidence chain export.
    pub evidence: Vec<EvidenceRecord>,
}

impl ObsCapture {
    /// Captures device `device`'s run from the platform `run_keep` handed
    /// back. The platform is only read; the capture owns its data.
    pub fn from_run(device: u32, report: RunReport, platform: &Platform) -> Self {
        let spans = platform
            .telemetry
            .as_ref()
            .map(|recorder| recorder.ring().iter().copied().collect())
            .unwrap_or_default();
        ObsCapture {
            device,
            report,
            spans,
            seals: platform.ssm.evidence().seals().to_vec(),
            evidence: platform.ssm.evidence().records().to_vec(),
        }
    }
}
