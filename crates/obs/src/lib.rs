//! The flight-recorder export plane.
//!
//! Everything the platform records in memory — trace-ring spans, metric
//! registries, evidence seals, fleet verdicts — stays useless to an
//! operator until it leaves the process in a format another tool opens.
//! This crate is that exit: three deterministic, canonical-bytes
//! exporters plus the forensics glue that turns a fleet incident into a
//! proof-carrying dossier.
//!
//! * [`log`] — a schema-versioned **JSONL event log**: one record per
//!   trace span, fault-plane transition, policy decision, evidence seal,
//!   device summary and fleet incident, in strict `(device, cycle, seq)`
//!   order.
//! * [`chrome`] — a **Chrome `trace_event` stream** (Perfetto
//!   compatible): every device is a process, every pipeline [`Stage`] a
//!   named thread track, 1 sim cycle = 1 µs.
//! * [`prom`] — a **Prometheus text exposition** of the metrics registry
//!   (cumulative-bucket histogram semantics) and fleet aggregates.
//! * [`fleet`] — fleet-scale capture: the summary stream observed in
//!   device order, rendered to JSONL/Prometheus, and
//!   [`IncidentDossier`][cres_forensics::IncidentDossier] construction
//!   with Merkle inclusion proofs for every cited evidence record.
//! * [`lint`] — artifact validators (the `obs_lint` CI gate): schema,
//!   ordering, track-overlap and cumulative-bucket checks over the
//!   exported bytes, with no dependence on how they were produced.
//!
//! Everything here is **post-hoc**: exporters read a finished
//! [`ObsCapture`] (taken from [`ScenarioRunner::run_keep`]
//! [cres_platform::ScenarioRunner::run_keep]'s platform) or a finished
//! fleet observation. Nothing touches the simulation hot path, so the
//! zero-allocation discipline and bit-identical reports are untouched —
//! `e16_observe` pins both.
//!
//! [`Stage`]: cres_sim::Stage

pub mod capture;
pub mod chrome;
pub mod fleet;
pub mod lint;
pub mod log;
pub mod prom;

pub use capture::ObsCapture;
pub use chrome::{chrome_events, chrome_trace, ChromeEvent};
pub use fleet::{
    fleet_jsonl, incident_dossiers, observe_fleet, CarrierCheck, FleetObservation,
    IncidentReconstruction,
};
pub use log::{device_records, write_jsonl, LogEvent, LogRecord};
pub use prom::{fleet_prometheus, pool_prometheus, prometheus};

/// Escapes `s` for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Appends `v` in decimal without going through `fmt` — the exporters
/// render tens of thousands of integers per artifact, and the fmt
/// machinery's per-argument overhead is the difference between an export
/// that costs <1% of the run wall and one that costs 10% (`e16_observe`
/// pins the budget).
pub(crate) fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

/// Lower-hex rendering of a 32-byte digest.
pub(crate) fn hex32(bytes: &[u8; 32]) -> String {
    let mut out = String::with_capacity(64);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}
