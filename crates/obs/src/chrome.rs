//! Chrome `trace_event` export (Perfetto / `chrome://tracing`).
//!
//! Mapping: every device is a *process* (`pid` = device id + 1, so the
//! tooling never sees pid 0), every pipeline [`Stage`] a named *thread
//! track* (`tid` = stage index + 1), and every trace span a complete
//! `"ph":"X"` duration event at 1 sim cycle = 1 µs. Fault-plane and
//! policy spans keep their decoded event names so a correlation stall or
//! a tier raise reads directly off the track.
//!
//! Spans on one track never overlap: a per-track cursor pushes an event
//! that starts before the previous one ended to the first free
//! microsecond — trace viewers render overlapping same-track events as
//! garbage, and the proptests pin the invariant.

use crate::capture::ObsCapture;
use crate::log::{fault_name, policy_name};
use crate::{json_escape, push_u64};
use cres_sim::Stage;
use std::fmt::Write as _;

/// One rendered `"ph":"X"` duration event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Track process (device id + 1).
    pub pid: u32,
    /// Track thread (stage index + 1).
    pub tid: u32,
    /// Event start, µs (== sim cycle unless nudged by the track cursor).
    pub ts: u64,
    /// Event duration, µs (≥ 1).
    pub dur: u64,
    /// Event name (stage name, or decoded fault/policy event).
    pub name: &'static str,
    /// Event category: `pipeline`, `fault` or `policy`.
    pub cat: &'static str,
    /// The span's raw argument.
    pub arg: u32,
    /// The span's original sim cycle (before any cursor nudge).
    pub cycle: u64,
}

/// Lowers captures to duration events, applying the per-track
/// non-overlap cursor. Deterministic: device order, then ring order.
pub fn chrome_events(captures: &[ObsCapture]) -> Vec<ChromeEvent> {
    let mut events = Vec::with_capacity(captures.iter().map(|c| c.spans.len()).sum());
    for capture in captures {
        let mut cursors = [0u64; Stage::COUNT];
        for span in &capture.spans {
            let index = span.stage.index();
            let ts = span.at.cycle().max(cursors[index]);
            let dur = span.cycles.max(1);
            cursors[index] = ts + dur;
            let (name, cat) = match span.stage {
                Stage::FaultPlane => (fault_name(span.arg), "fault"),
                Stage::Policy => (policy_name(span.arg), "policy"),
                stage => (stage.name(), "pipeline"),
            };
            events.push(ChromeEvent {
                pid: capture.device + 1,
                tid: index as u32 + 1,
                ts,
                dur,
                name,
                cat,
                arg: span.arg,
                cycle: span.at.cycle(),
            });
        }
    }
    events
}

/// Renders captures as a complete Chrome trace JSON document: metadata
/// (process and thread names) first, then every duration event.
pub fn chrome_trace(captures: &[ObsCapture]) -> String {
    let events = chrome_events(captures);
    let mut out = String::with_capacity(events.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    // single output buffer, no per-event allocation: the export plane is
    // off the hot path but still budgeted (<5% of run wall, pinned by
    // `e16_observe`)
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };
    for capture in captures {
        let pid = capture.device + 1;
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"device-{} ({})\"}}}}",
            capture.device,
            json_escape(&capture.report.profile.to_string())
        );
        // name every track the device actually used, stage order
        let mut used = [false; Stage::COUNT];
        for span in &capture.spans {
            used[span.stage.index()] = true;
        }
        for stage in Stage::ALL {
            if !used[stage.index()] {
                continue;
            }
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                stage.index() + 1,
                stage.name()
            );
        }
    }
    for e in &events {
        sep(&mut out);
        out.push_str("{\"name\":\"");
        out.push_str(e.name);
        out.push_str("\",\"cat\":\"");
        out.push_str(e.cat);
        out.push_str("\",\"ph\":\"X\",\"pid\":");
        push_u64(&mut out, u64::from(e.pid));
        out.push_str(",\"tid\":");
        push_u64(&mut out, u64::from(e.tid));
        out.push_str(",\"ts\":");
        push_u64(&mut out, e.ts);
        out.push_str(",\"dur\":");
        push_u64(&mut out, e.dur);
        out.push_str(",\"args\":{\"arg\":");
        push_u64(&mut out, u64::from(e.arg));
        // the original sim cycle is only worth a byte budget when the
        // non-overlap cursor actually nudged the event off it
        if e.cycle != e.ts {
            out.push_str(",\"cycle\":");
            push_u64(&mut out, e.cycle);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_platform::runner::{Scenario, ScenarioRunner};
    use cres_platform::{PlatformConfig, PlatformProfile};
    use cres_sim::SimDuration;

    fn capture() -> ObsCapture {
        let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, 42);
        config.telemetry.enabled = true;
        let (report, platform) =
            ScenarioRunner::new(config).run_keep(Scenario::quiet(SimDuration::cycles(120_000)));
        ObsCapture::from_run(0, report, &platform)
    }

    #[test]
    fn tracks_never_overlap_and_names_resolve() {
        let cap = capture();
        assert!(!cap.spans.is_empty(), "quiet run recorded no spans");
        let events = chrome_events(std::slice::from_ref(&cap));
        let mut cursors = std::collections::BTreeMap::new();
        for e in &events {
            let cursor = cursors.entry((e.pid, e.tid)).or_insert(0u64);
            assert!(e.ts >= *cursor, "overlap on track {:?}", (e.pid, e.tid));
            assert!(e.dur >= 1);
            *cursor = e.ts + e.dur;
            assert_ne!(e.name, "unknown");
        }
        let text = chrome_trace(std::slice::from_ref(&cap));
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.ends_with("]}"));
        assert!(text.contains("\"process_name\""));
        assert!(text.contains("\"monitor-sample\""));
    }
}
