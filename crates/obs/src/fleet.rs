//! Fleet-scale observation: the summary stream, fleet-level exports and
//! proof-carrying incident reconstruction.
//!
//! [`observe_fleet`] wraps [`run_fleet_observed`] and keeps every
//! [`DeviceSummary`] the aggregator ingests — in strict device-id order,
//! so everything derived here is byte-identical across worker counts.
//! [`fleet_jsonl`] renders that stream plus the verdict's incidents and
//! the fleet evidence seal as one JSONL document; [`incident_dossiers`]
//! turns each fleet incident into an
//! [`IncidentDossier`][cres_forensics::IncidentDossier] by
//! deterministically *re-running* the cited carrier devices
//! ([`DeviceSpec::generate`] is pure in `(base_seed, device_id)`),
//! verifying three independent things per carrier:
//!
//! 1. every cited evidence record's Merkle inclusion proof against the
//!    covering on-device seal ([`DeviceDossier::from_store`]);
//! 2. the re-run summary digest equals the digest the fleet run shipped
//!    (the re-run really is the same device);
//! 3. that digest's inclusion proof against the fleet evidence root
//!    ([`MerkleAccumulator::inclusion_proof`]).

use crate::log::{write_jsonl, LogEvent, LogRecord};
use cres_crypto::merkle::MerkleAccumulator;
use cres_fleet::{
    run_fleet_observed, DeviceSpec, DeviceSummary, FleetConfig, FleetError, FleetIncident,
    FleetReport, FleetSocConfig,
};
use cres_forensics::{DeviceDossier, IncidentDossier};
use cres_platform::campaign::BuiltAttack;
use cres_platform::runner::ScenarioRunner;
use cres_sim::SimTime;

/// A fleet run plus the per-device summary stream it produced.
#[derive(Debug, Clone)]
pub struct FleetObservation {
    /// The fleet configuration that ran.
    pub config: FleetConfig,
    /// The fleet report (verdict + schedule-dependent accounting).
    pub report: FleetReport,
    /// Every device summary, strict device-id order.
    pub summaries: Vec<DeviceSummary>,
}

/// Runs the fleet and captures the summary stream alongside the report.
pub fn observe_fleet<B>(
    config: &FleetConfig,
    soc_config: &FleetSocConfig,
    workers: usize,
    builder: B,
) -> Result<FleetObservation, FleetError>
where
    B: Fn(&str) -> BuiltAttack + Sync,
{
    let mut summaries = Vec::with_capacity(config.devices as usize);
    let report = run_fleet_observed(config, soc_config, workers, builder, |summary| {
        summaries.push(summary.clone());
    })?;
    Ok(FleetObservation {
        config: config.clone(),
        report,
        summaries,
    })
}

/// Renders a fleet observation as one JSONL document: one `device` record
/// per summary (stamped at the simulation horizon), then fleet-scope
/// records — every fleet incident and the final evidence seal — addressed
/// to the device-id sentinel one past the last device.
///
/// A pure function of the verdict and summary stream, so the bytes are
/// identical for any worker count.
pub fn fleet_jsonl(observation: &FleetObservation) -> String {
    let horizon = observation.config.device_cycles;
    let mut records: Vec<LogRecord> = observation
        .summaries
        .iter()
        .map(|summary| LogRecord {
            device: summary.device,
            cycle: horizon,
            seq: 0,
            event: LogEvent::Device {
                profile: summary.profile.to_string(),
                attack: summary.attack.clone(),
                detected: summary.detected_at,
                availability: summary.availability,
                incidents: summary.total_incidents,
                chain_ok: summary.evidence_chain_ok,
                digest: summary.digest,
            },
        })
        .collect();
    let fleet_scope = observation.config.devices;
    let mut seq = 0u32;
    for incident in &observation.report.verdict.incidents {
        let event = match incident {
            FleetIncident::CoordinatedCampaign {
                signature,
                devices,
                detected,
            } => LogEvent::FleetIncident {
                kind: "coordinated-campaign",
                signature: signature.clone(),
                devices: *devices,
                detail: u64::from(*detected),
            },
            FleetIncident::LateralMovement {
                signature,
                chain,
                onset,
            } => LogEvent::FleetIncident {
                kind: "lateral-movement",
                signature: signature.clone(),
                devices: *chain,
                detail: *onset,
            },
        };
        records.push(LogRecord {
            device: fleet_scope,
            cycle: horizon,
            seq,
            event,
        });
        seq += 1;
    }
    if let Some(root) = observation.report.verdict.evidence_root {
        records.push(LogRecord {
            device: fleet_scope,
            cycle: horizon,
            seq,
            event: LogEvent::Seal {
                root,
                covered: observation.report.verdict.evidence_leaves,
            },
        });
    }
    write_jsonl(&records)
}

/// One carrier's fleet-level verification results, alongside its
/// [`DeviceDossier`] inside the reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarrierCheck {
    /// Device id.
    pub device: u32,
    /// Re-run summary digest equals the digest the fleet run shipped.
    pub digest_ok: bool,
    /// Summary digest carries a verifying inclusion proof against the
    /// fleet evidence root.
    pub fleet_proof_ok: bool,
}

/// One fleet incident reconstructed into a dossier, plus the per-carrier
/// fleet-root verification the dossier types are agnostic to.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentReconstruction {
    /// The dossier: correlation facts + per-device evidence citations.
    pub dossier: IncidentDossier,
    /// Fleet-level checks, same order as `dossier.devices`.
    pub carriers: Vec<CarrierCheck>,
}

impl IncidentReconstruction {
    /// True when every on-device citation proof, every re-run digest and
    /// every fleet-root inclusion proof verifies.
    pub fn fully_verified(&self) -> bool {
        self.dossier.all_verified()
            && self
                .carriers
                .iter()
                .all(|c| c.digest_ok && c.fleet_proof_ok)
    }
}

/// Reconstructs every fleet incident in the verdict into a
/// proof-carrying dossier, re-running up to `max_carriers` carrier
/// devices per incident.
pub fn incident_dossiers<B>(
    observation: &FleetObservation,
    builder: B,
    max_carriers: usize,
) -> Vec<IncidentReconstruction>
where
    B: Fn(&str) -> BuiltAttack,
{
    let verdict = &observation.report.verdict;
    // Rebuild the fleet accumulator once: digests in device order are
    // exactly what the SOC appended, so the root must match the verdict.
    let digests: Vec<[u8; 32]> = observation.summaries.iter().map(|s| s.digest).collect();
    let mut accumulator = MerkleAccumulator::new();
    for digest in &digests {
        accumulator.append_digest(digest);
    }
    let root_matches = accumulator.root() == verdict.evidence_root;
    verdict
        .incidents
        .iter()
        .map(|incident| {
            let (signature, campaign) = match incident {
                FleetIncident::CoordinatedCampaign { signature, .. } => (signature, true),
                FleetIncident::LateralMovement { signature, .. } => (signature, false),
            };
            let track = verdict
                .signatures
                .iter()
                .find(|t| &t.signature == signature);
            let window = (
                SimTime::at_cycle(track.and_then(|t| t.first_onset).unwrap_or(0)),
                SimTime::at_cycle(
                    track
                        .and_then(|t| t.last_onset)
                        .unwrap_or(observation.config.device_cycles),
                ),
            );
            let mut devices = Vec::new();
            let mut carriers = Vec::new();
            for summary in observation
                .summaries
                .iter()
                .filter(|s| s.attack.as_deref() == Some(signature.as_str()))
                .take(max_carriers)
            {
                let (dossier, rerun_digest) = reconstruct_carrier(observation, summary, &builder);
                let fleet_proof_ok = root_matches
                    && accumulator
                        .inclusion_proof(digests.iter(), u64::from(summary.device))
                        .is_some_and(|proof| accumulator.verify_proof(&summary.digest, &proof));
                carriers.push(CarrierCheck {
                    device: summary.device,
                    digest_ok: rerun_digest == summary.digest,
                    fleet_proof_ok,
                });
                devices.push(dossier);
            }
            IncidentReconstruction {
                dossier: IncidentDossier {
                    signature: signature.clone(),
                    campaign,
                    window,
                    devices,
                },
                carriers,
            }
        })
        .collect()
}

/// Deterministically re-runs one carrier device, seals its evidence at
/// the horizon and reconstructs its dossier. Returns the re-run summary
/// digest so the caller can check it against the fleet-run digest.
fn reconstruct_carrier<B>(
    observation: &FleetObservation,
    summary: &DeviceSummary,
    builder: &B,
) -> (DeviceDossier, [u8; 32])
where
    B: Fn(&str) -> BuiltAttack,
{
    let spec = DeviceSpec::generate(&observation.config, summary.device);
    let scenario = spec
        .scenario_spec()
        .materialise(builder)
        .expect("signature names came from the fleet run's own catalog");
    let runner = ScenarioRunner::new(spec.platform_config(observation.config.telemetry));
    let (report, mut platform) = runner.run_keep(scenario);
    let rerun = DeviceSummary::from_report(summary.device, &report);
    // Seal at the horizon so every record is covered and provable.
    platform.ssm.seal_evidence(SimTime::at_cycle(spec.cycles));
    let dossier = DeviceDossier::from_store(
        summary.device,
        summary.attack.clone(),
        platform.ssm.evidence(),
    );
    (dossier, rerun.digest)
}
