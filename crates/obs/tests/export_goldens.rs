//! Golden artifact fixtures for the three export formats, plus the
//! cross-worker byte-identity pin.
//!
//! One attacked single-device run at seed 42 is exported to all three
//! formats and compared byte-for-byte against fixtures committed under
//! `tests/fixtures/`; a small campaign fleet pins the fleet-scope JSONL
//! and Prometheus artifacts the same way. Any change to an exporter's
//! byte layout — field order, number rendering, escaping, record
//! ordering — shows up here as a fixture diff.
//!
//! Regenerate deliberately with:
//!
//! ```text
//! CRES_BLESS=1 cargo test -p cres-obs --test export_goldens
//! ```
//!
//! and review the diff like any other behavioural change.

use cres_fleet::spec::AttackMix;
use cres_fleet::{FleetConfig, FleetSocConfig};
use cres_obs::lint::{check_chrome, check_jsonl, check_prom};
use cres_obs::{
    chrome_trace, device_records, fleet_jsonl, fleet_prometheus, observe_fleet, prometheus,
    write_jsonl, FleetObservation, ObsCapture,
};
use cres_platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres_sim::{SimDuration, SimTime};
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 42;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn bless_mode() -> bool {
    std::env::var("CRES_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn assert_golden(name: &str, artifact: &str) {
    let path = fixture_path(name);
    if bless_mode() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, artifact)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run CRES_BLESS=1 cargo test -p cres-obs --test export_goldens",
            path.display()
        )
    });
    assert_eq!(
        artifact, golden,
        "{name} diverged from its golden — if intentional, re-bless and review the diff"
    );
}

/// The golden device cell: an attacked CyberResilient run long enough to
/// exercise spans, fault-plane transitions, policy-free recovery and
/// evidence seals in one artifact set.
fn golden_capture() -> ObsCapture {
    let scenario = Scenario::quiet(SimDuration::cycles(300_000)).attack(
        SimTime::at_cycle(120_000),
        SimDuration::cycles(8_000),
        cres_attacks::catalog::try_build("code-injection").expect("known attack"),
    );
    let config = PlatformConfig::new(PlatformProfile::CyberResilient, GOLDEN_SEED);
    let (report, platform) = ScenarioRunner::new(config).run_keep(scenario);
    ObsCapture::from_run(0, report, &platform)
}

fn golden_fleet(workers: usize) -> FleetObservation {
    let mut config = FleetConfig::new(24, GOLDEN_SEED);
    config.device_cycles = 60_000;
    config.mix = AttackMix::campaign("code-injection");
    observe_fleet(
        &config,
        &FleetSocConfig::default(),
        workers,
        cres_attacks::catalog::try_build,
    )
    .expect("fleet mix resolves")
}

#[test]
fn device_artifacts_match_committed_goldens() {
    let capture = golden_capture();
    let trace = chrome_trace(std::slice::from_ref(&capture));
    let log = write_jsonl(&device_records(&capture));
    let prom = prometheus(capture.report.telemetry.as_ref().expect("telemetry on"));
    // the fixtures must be valid before they are golden
    check_chrome(&trace).expect("golden trace fails lint");
    check_jsonl(&log).expect("golden log fails lint");
    check_prom(&prom).expect("golden exposition fails lint");
    assert_golden("trace_seed42.json", &trace);
    assert_golden("log_seed42.jsonl", &log);
    assert_golden("metrics_seed42.prom", &prom);
}

#[test]
fn fleet_artifacts_match_committed_goldens() {
    let observation = golden_fleet(2);
    let jsonl = fleet_jsonl(&observation);
    let prom = fleet_prometheus(&observation.report.verdict);
    check_jsonl(&jsonl).expect("golden fleet log fails lint");
    check_prom(&prom).expect("golden fleet exposition fails lint");
    assert_golden("fleet_seed42.jsonl", &jsonl);
    assert_golden("fleet_seed42.prom", &prom);
}

/// The worker-invariance pin: the exported bytes — not just the verdict —
/// must be identical at 1, 2 and 8 workers. Sharding is scheduling, and
/// scheduling must be invisible in the artifacts.
#[test]
fn fleet_artifacts_byte_identical_across_worker_counts() {
    let mut reference: Option<(String, String)> = None;
    for workers in [1usize, 2, 8] {
        let observation = golden_fleet(workers);
        let artifacts = (
            fleet_jsonl(&observation),
            fleet_prometheus(&observation.report.verdict),
        );
        match &reference {
            None => reference = Some(artifacts),
            Some(expected) => assert_eq!(
                expected, &artifacts,
                "fleet artifacts diverged at {workers} workers"
            ),
        }
    }
}
