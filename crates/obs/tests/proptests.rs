//! Property tests for the export plane: the three artifact invariants
//! the `obs_lint` gate enforces must hold for *any* run, not just the
//! golden cells.
//!
//! Each case samples a platform cell (profile, seed, duration, attack)
//! and drives a real simulation through `run_keep`, then checks the
//! exported artifacts structurally — and through the same [`lint`]
//! validators CI applies to exported files, so the validators themselves
//! are exercised against generated (not hand-picked) inputs.
//!
//! [`lint`]: cres_obs::lint

use cres_attacks::catalog;
use cres_obs::lint::{check_chrome, check_jsonl, check_prom};
use cres_obs::{chrome_events, chrome_trace, device_records, prometheus, write_jsonl, ObsCapture};
use cres_platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One sampled cell, driven through a real run.
fn run_cell(profile_index: usize, seed: u64, duration: u64, attack_index: usize) -> ObsCapture {
    let profile = PlatformProfile::ALL[profile_index % PlatformProfile::ALL.len()];
    let name = catalog::NAMES[attack_index % catalog::NAMES.len()];
    let scenario = Scenario::quiet(SimDuration::cycles(duration)).attack(
        SimTime::at_cycle(duration / 3),
        SimDuration::cycles(4_000),
        catalog::try_build(name).expect("catalog name builds"),
    );
    let mut config = PlatformConfig::new(profile, seed);
    config.telemetry.enabled = true;
    let (report, platform) = ScenarioRunner::new(config).run_keep(scenario);
    ObsCapture::from_run(0, report, &platform)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// JSONL records come out strictly `(device, cycle, seq)`-ordered
    /// with dense per-device sequence numbers, and the rendered document
    /// passes the lint gate.
    #[test]
    fn jsonl_is_strictly_ordered(
        profile in 0usize..3,
        seed in 0u64..10_000,
        duration in 40_000u64..160_000,
        attack in 0usize..16
    ) {
        let capture = run_cell(profile, seed, duration, attack);
        let records = device_records(&capture);
        prop_assert!(!records.is_empty(), "run recorded nothing");
        for (i, pair) in records.windows(2).enumerate() {
            prop_assert!(
                (pair[0].device, pair[0].cycle, pair[0].seq)
                    < (pair[1].device, pair[1].cycle, pair[1].seq),
                "records {i} and {} out of order", i + 1
            );
        }
        for (i, record) in records.iter().enumerate() {
            prop_assert_eq!(record.seq as usize, i, "sequence numbers not dense");
        }
        prop_assert_eq!(check_jsonl(&write_jsonl(&records)), Ok(records.len()));
    }

    /// Chrome duration events on one `(pid, tid)` track never overlap,
    /// every duration is at least 1µs, and the rendered trace passes the
    /// lint gate.
    #[test]
    fn chrome_tracks_never_overlap(
        profile in 0usize..3,
        seed in 10_000u64..20_000,
        duration in 40_000u64..160_000,
        attack in 0usize..16
    ) {
        let capture = run_cell(profile, seed, duration, attack);
        let events = chrome_events(std::slice::from_ref(&capture));
        prop_assert!(!events.is_empty(), "run produced no trace events");
        let mut cursors: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for event in &events {
            let cursor = cursors.entry((event.pid, event.tid)).or_insert(0);
            prop_assert!(
                event.ts >= *cursor,
                "track ({}, {}) overlaps at ts {}", event.pid, event.tid, event.ts
            );
            prop_assert!(event.dur >= 1);
            prop_assert!(event.ts >= event.cycle, "cursor nudged an event backwards");
            *cursor = event.ts + event.dur;
        }
        let trace = chrome_trace(std::slice::from_ref(&capture));
        prop_assert_eq!(check_chrome(&trace), Ok(events.len()));
    }

    /// Prometheus histogram buckets are monotone cumulative with
    /// `+Inf` equal to `_count` — checked by parsing the rendered
    /// exposition, which must also pass the lint gate.
    #[test]
    fn prom_buckets_are_monotone_cumulative(
        profile in 0usize..3,
        seed in 20_000u64..30_000,
        duration in 40_000u64..160_000,
        attack in 0usize..16
    ) {
        let capture = run_cell(profile, seed, duration, attack);
        let snapshot = capture.report.telemetry.as_ref().expect("telemetry on");
        let prom = prometheus(snapshot);
        prop_assert!(check_prom(&prom).is_ok(), "{:?}", check_prom(&prom));
        // independent bucket walk, not trusting the lint gate's parser
        let mut last: Option<u64> = None;
        let mut inf: Option<u64> = None;
        for line in prom.lines() {
            if let Some((head, value)) = line.rsplit_once(' ') {
                if let Some((name, label)) = head.split_once("{le=\"") {
                    prop_assert!(name.ends_with("_bucket"));
                    let value: u64 = value.parse().expect("bucket count parses");
                    if let Some(previous) = last {
                        prop_assert!(
                            value >= previous,
                            "bucket {head} dropped below its predecessor"
                        );
                    }
                    last = Some(value);
                    if label.starts_with("+Inf") {
                        inf = Some(value);
                        last = None;
                    }
                } else if head.ends_with("_count") {
                    let count: u64 = value.parse().expect("count parses");
                    prop_assert_eq!(
                        inf.take(),
                        Some(count),
                        "histogram +Inf bucket != _count"
                    );
                }
            }
        }
    }
}
