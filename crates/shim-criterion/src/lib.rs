#![warn(missing_docs)]

//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment cannot reach crates.io, so the real criterion
//! cannot be fetched. This crate keeps the workspace's `benches/` sources
//! compiling and running unchanged by reimplementing the API subset they
//! use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `iter`/`iter_batched`, throughput
//! annotation and sample-size hints.
//!
//! Measurement model (simpler than criterion's, same shape of output): each
//! benchmark is warmed up briefly, then timed over `sample_size` samples of
//! an adaptively chosen iteration batch, reporting the per-iteration mean
//! of the fastest third of samples (robust against scheduler noise) plus
//! derived throughput when annotated.

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
            sample_size: 50,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group(name);
        g.bench_function("", &mut f);
        g.finish();
    }
}

/// Throughput annotation for a group, used to derive rate output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input size in bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// Re-run setup every iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(4);
        self
    }

    /// Benchmarks `f` with a fixed input reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Benchmarks a closure by name.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(name, &b);
        self
    }

    /// Ends the group (output is already printed; kept for API parity).
    pub fn finish(self) {}

    fn report(&self, label: &str, b: &Bencher) {
        let per_iter = b.per_iter();
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(n) => {
                let mbps = n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0);
                format!("  {mbps:>10.1} MiB/s")
            }
            Throughput::Elements(n) => {
                let eps = n as f64 / per_iter.as_secs_f64();
                format!("  {eps:>10.0} elem/s")
            }
        });
        let label = if label.is_empty() {
            self.name.clone()
        } else {
            label.to_string()
        };
        println!(
            "{label:<28} {:>12}{}",
            format_duration(per_iter),
            rate.unwrap_or_default()
        );
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    best_samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            best_samples: Vec::new(),
        }
    }

    /// Times `routine` (criterion's `Bencher::iter`).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // warm up + pick a batch size targeting ~2ms per sample
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed() / batch);
        }
        samples.sort();
        samples.truncate((self.sample_size / 3).max(1));
        self.best_samples = samples;
    }

    /// Times `routine` over fresh state built by `setup` each sample
    /// (criterion's `Bencher::iter_batched`).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(t.elapsed());
        }
        samples.sort();
        samples.truncate((self.sample_size / 3).max(1));
        self.best_samples = samples;
    }

    fn per_iter(&self) -> Duration {
        if self.best_samples.is_empty() {
            return Duration::ZERO;
        }
        self.best_samples.iter().sum::<Duration>() / self.best_samples.len() as u32
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(5);
        g.throughput(Throughput::Bytes(64));
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("noop", 64), &64u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                n * 2
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("batched");
        g.sample_size(6);
        let mut setups = 0u32;
        g.bench_function("b", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
        assert_eq!(setups, 6);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
