//! The sharded fleet runner: N devices across W warm worker shards.
//!
//! Work-stealing over an atomic cursor (the same discipline as the
//! campaign engine): each worker claims the next unclaimed device id,
//! forks its spec, and runs it on the worker's **own**
//! [`PlatformPool`] — pools are never shared, so the warm path (cached
//! provisioning cell + recycled platform) stays lock-free and
//! allocation-light. Workers ship compact
//! [`DeviceSummary`] values through one
//! bounded channel; the aggregator (the calling thread) reorders
//! in-flight completions and feeds the fleet SOC strictly in device
//! order. A shared ingest watermark applies backpressure: a worker
//! holds a finished summary until its device id is within
//! [`REORDER_WINDOW`] ids of the watermark, so the reorder buffer —
//! and with it total fleet memory — stays bounded no matter how far
//! one slow device lets the other shards race ahead. Fleet verdicts
//! are bit-identical across worker counts; only wall-clock and shard
//! statistics vary with scheduling.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use cres_platform::campaign::BuiltAttack;
use cres_platform::runner::ScenarioRunner;
use cres_platform::{PlatformPool, PoolStats};

use crate::soc::{FleetSoc, FleetSocConfig, FleetVerdict};
use crate::spec::{DeviceSpec, FleetConfig};
use crate::summary::DeviceSummary;

/// How far past the aggregator's ingest watermark a worker may ship a
/// finished device summary. Bounds the reorder buffer (and hence fleet
/// memory) even when one slow device stalls the in-order front while
/// every other shard keeps completing.
pub const REORDER_WINDOW: usize = 64;

/// Why a fleet run refused to start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The attack mix names an injector the builder cannot resolve
    /// (validated up front, before any device runs).
    UnknownAttack(String),
    /// `workers` was zero.
    NoWorkers,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownAttack(name) => write!(f, "unknown attack in fleet mix: {name}"),
            FleetError::NoWorkers => write!(f, "fleet runs need at least one worker"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Per-worker shard accounting (schedule-dependent: *not* part of the
/// verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Worker index.
    pub worker: usize,
    /// Devices this shard executed.
    pub devices: u32,
    /// The shard pool's final counters.
    pub pool: PoolStats,
}

/// The outcome of a fleet run: the deterministic verdict plus
/// schedule-dependent performance accounting.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The fleet SOC's verdict — a pure function of the fleet config.
    pub verdict: FleetVerdict,
    /// Devices executed.
    pub devices: u32,
    /// Workers the run used.
    pub workers: usize,
    /// Wall-clock time of the sharded execution.
    pub wall: Duration,
    /// Fleet throughput: devices per wall-clock second.
    pub devices_per_sec: f64,
    /// Per-shard accounting, indexed by worker.
    pub shards: Vec<ShardStats>,
    /// Deepest the aggregator's reorder buffer ever got (≤
    /// [`REORDER_WINDOW`], enforced by the ingest watermark).
    pub peak_reorder: usize,
}

impl FleetReport {
    /// Pool counters merged across all shards.
    pub fn pool_stats(&self) -> PoolStats {
        let mut merged = PoolStats::default();
        for shard in &self.shards {
            merged.merge(&shard.pool);
        }
        merged
    }
}

/// Runs the fleet with default SOC thresholds. See [`run_fleet_with`].
pub fn run_fleet<B>(
    config: &FleetConfig,
    workers: usize,
    builder: B,
) -> Result<FleetReport, FleetError>
where
    B: Fn(&str) -> BuiltAttack + Sync,
{
    run_fleet_with(config, &FleetSocConfig::default(), workers, builder)
}

/// Runs `config.devices` device simulations across `workers` shards and
/// correlates them through a fleet SOC with the given thresholds.
///
/// The verdict inside the returned report is bit-identical for any
/// `workers ≥ 1`; wall/throughput/shard fields are schedule-dependent.
pub fn run_fleet_with<B>(
    config: &FleetConfig,
    soc_config: &FleetSocConfig,
    workers: usize,
    builder: B,
) -> Result<FleetReport, FleetError>
where
    B: Fn(&str) -> BuiltAttack + Sync,
{
    run_fleet_observed(config, soc_config, workers, builder, |_| {})
}

/// [`run_fleet_with`] plus a summary observer: `observe` sees every
/// [`DeviceSummary`] exactly once, in strict device-id order, immediately
/// after the fleet SOC ingests it — the hook the export plane streams
/// fleet-scale event logs from without a second pass over the fleet.
/// Because the observer runs on the aggregator's in-order front, whatever
/// it accumulates is bit-identical across worker counts.
pub fn run_fleet_observed<B, O>(
    config: &FleetConfig,
    soc_config: &FleetSocConfig,
    workers: usize,
    builder: B,
    mut observe: O,
) -> Result<FleetReport, FleetError>
where
    B: Fn(&str) -> BuiltAttack + Sync,
    O: FnMut(&DeviceSummary),
{
    if workers == 0 {
        return Err(FleetError::NoWorkers);
    }
    // Validate the whole mix before spending a cycle on simulation, so
    // a typo'd attack name fails fast instead of mid-fleet.
    for name in &config.mix.attacks {
        builder(name).map_err(|e| FleetError::UnknownAttack(e.name))?;
    }

    let cursor = AtomicUsize::new(0);
    // Ids ingested so far: workers wait for `id < watermark + window`
    // before sending, which caps the aggregator's reorder buffer.
    let watermark = AtomicUsize::new(0);
    let total = config.devices as usize;
    let (tx, rx) = mpsc::sync_channel::<DeviceSummary>(workers * 4);
    let mut soc = FleetSoc::new(soc_config.clone());
    let mut reorder: BTreeMap<u32, DeviceSummary> = BTreeMap::new();
    let mut peak_reorder = 0usize;
    let started = Instant::now();

    let shards = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let tx = tx.clone();
                let cursor = &cursor;
                let watermark = &watermark;
                let builder = &builder;
                scope.spawn(move || {
                    let mut pool = PlatformPool::new();
                    let mut devices = 0u32;
                    loop {
                        let id = cursor.fetch_add(1, Ordering::Relaxed);
                        if id >= total {
                            break;
                        }
                        let spec = DeviceSpec::generate(config, id as u32);
                        let scenario = spec
                            .scenario_spec()
                            .materialise(builder)
                            .expect("mix validated before spawn");
                        let runner = ScenarioRunner::new(spec.platform_config(config.telemetry));
                        let report = runner.run_pooled(&mut pool, scenario);
                        // the full RunReport dies here: only the compact
                        // summary crosses the channel
                        let summary = DeviceSummary::from_report(id as u32, &report);
                        // backpressure: don't race more than a window
                        // ahead of the in-order ingest front
                        while id >= watermark.load(Ordering::Acquire) + REORDER_WINDOW {
                            std::thread::yield_now();
                        }
                        if tx.send(summary).is_err() {
                            break;
                        }
                        devices += 1;
                    }
                    ShardStats {
                        worker,
                        devices,
                        pool: pool.stats(),
                    }
                })
            })
            .collect();
        drop(tx); // aggregator's recv loop ends when the last shard exits

        // The calling thread is the aggregator: reorder in-flight
        // completions and ingest strictly in device order.
        while let Ok(summary) = rx.recv() {
            reorder.insert(summary.device, summary);
            peak_reorder = peak_reorder.max(reorder.len());
            while let Some(next) = reorder.remove(&soc.ingested()) {
                soc.ingest(&next);
                observe(&next);
            }
            watermark.store(soc.ingested() as usize, Ordering::Release);
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("fleet shard panicked"))
            .collect::<Vec<_>>()
    });

    debug_assert!(reorder.is_empty(), "reorder buffer drained");
    let wall = started.elapsed();
    let verdict = soc.finish();
    debug_assert_eq!(verdict.devices, config.devices);
    Ok(FleetReport {
        verdict,
        devices: config.devices,
        workers,
        devices_per_sec: f64::from(config.devices) / wall.as_secs_f64().max(1e-9),
        wall,
        shards,
        peak_reorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AttackMix;

    fn small_config() -> FleetConfig {
        let mut config = FleetConfig::new(12, 42);
        config.device_cycles = 60_000;
        config
    }

    #[test]
    fn unknown_attack_fails_before_running() {
        let mut config = small_config();
        config.mix = AttackMix::campaign("no-such-attack");
        let err = run_fleet(&config, 2, cres_attacks::catalog::try_build).unwrap_err();
        assert_eq!(err, FleetError::UnknownAttack("no-such-attack".into()));
    }

    #[test]
    fn zero_workers_is_an_error() {
        let err = run_fleet(&small_config(), 0, cres_attacks::catalog::try_build).unwrap_err();
        assert_eq!(err, FleetError::NoWorkers);
    }

    #[test]
    fn shards_cover_every_device_exactly_once() {
        let config = small_config();
        let report = run_fleet(&config, 3, cres_attacks::catalog::try_build).unwrap();
        assert_eq!(report.devices, 12);
        assert_eq!(report.verdict.devices, 12);
        assert_eq!(
            report.shards.iter().map(|s| s.devices).sum::<u32>(),
            config.devices
        );
        assert_eq!(report.verdict.evidence_leaves, 12);
        assert!(report.peak_reorder <= REORDER_WINDOW);
        assert!(report.devices_per_sec > 0.0);
    }

    #[test]
    fn verdict_is_worker_count_invariant() {
        let config = small_config();
        let one = run_fleet(&config, 1, cres_attacks::catalog::try_build).unwrap();
        let three = run_fleet(&config, 3, cres_attacks::catalog::try_build).unwrap();
        assert_eq!(one.verdict, three.verdict);
        assert_eq!(one.verdict.to_json(), three.verdict.to_json());
    }

    #[test]
    fn observer_sees_every_device_in_order_on_any_worker_count() {
        let config = small_config();
        let observed = |workers| {
            let mut seen: Vec<DeviceSummary> = Vec::new();
            run_fleet_observed(
                &config,
                &FleetSocConfig::default(),
                workers,
                cres_attacks::catalog::try_build,
                |summary| seen.push(summary.clone()),
            )
            .unwrap();
            seen
        };
        let one = observed(1);
        assert_eq!(one.len(), 12);
        assert!(one.windows(2).all(|w| w[0].device + 1 == w[1].device));
        assert_eq!(one, observed(3), "observer stream is schedule-dependent");
    }

    #[test]
    fn pools_stay_warm_across_a_shard() {
        let mut config = small_config();
        config.devices = 24;
        let report = run_fleet(&config, 1, cres_attacks::catalog::try_build).unwrap();
        let pool = report.pool_stats();
        // 2 batches × ≤2 TEE deployments = ≤4 provisioning cells; the
        // other 20+ acquires must hit the cache
        assert!(
            pool.hit_rate() >= 0.8,
            "cold fleet pool: {pool:?} (hit rate {:.2})",
            pool.hit_rate()
        );
        assert!(pool.platform_recycles > 0);
    }
}
