//! Compact per-device summaries: what a shard ships to the fleet SOC.
//!
//! A full `RunReport` carries attack tables, telemetry snapshots and
//! availability detail — fine for one device, ruinous for 10k held at
//! once. [`DeviceSummary`] keeps only what cross-device correlation
//! needs (a few dozen bytes plus the attack name) and a SHA-256 digest
//! of the whole record, which is what the fleet evidence accumulator
//! folds in. Workers drop the `RunReport` immediately after
//! summarising, so fleet memory is O(workers + log n), not O(n).

use cres_crypto::sha2::Sha256;
use cres_platform::{PlatformProfile, RunReport};
use cres_ssm::HealthState;

/// The distilled outcome of one device run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSummary {
    /// Device id (dense, 0-based).
    pub device: u32,
    /// Topology profile the device ran.
    pub profile: PlatformProfile,
    /// Platform (batch) seed the device ran with.
    pub seed: u64,
    /// Attack signature (catalog name); `None` for unattacked devices.
    pub attack: Option<String>,
    /// First injection instant on the shared sim clock, cycles.
    pub first_injection: Option<u64>,
    /// First matching detection instant, cycles.
    pub detected_at: Option<u64>,
    /// Attack steps that achieved their goal.
    pub attacker_wins: u32,
    /// Service availability over the run.
    pub availability: f64,
    /// Final health state.
    pub final_health: HealthState,
    /// Steps completed by critical tasks.
    pub critical_steps: u64,
    /// Incidents classified on-device.
    pub total_incidents: u64,
    /// Evidence records at end of run.
    pub evidence_len: usize,
    /// Whether the on-device evidence chain verified.
    pub evidence_chain_ok: bool,
    /// SHA-256 over the canonical encoding of every field above — the
    /// leaf the fleet evidence accumulator appends.
    pub digest: [u8; 32],
}

impl DeviceSummary {
    /// Distils `report` (device `device`'s run) into a summary.
    pub fn from_report(device: u32, report: &RunReport) -> DeviceSummary {
        let outcome = report.attacks.first();
        let mut summary = DeviceSummary {
            device,
            profile: report.profile,
            seed: report.seed,
            attack: outcome.map(|o| o.name.clone()),
            first_injection: outcome.and_then(|o| o.first_injection).map(|t| t.cycle()),
            detected_at: outcome.and_then(|o| o.detected_at).map(|t| t.cycle()),
            attacker_wins: report.attacker_wins,
            availability: report.availability,
            final_health: report.final_health,
            critical_steps: report.critical_steps,
            total_incidents: report.total_incidents,
            evidence_len: report.evidence_len,
            evidence_chain_ok: report.evidence_chain_ok,
            digest: [0; 32],
        };
        summary.digest = summary.compute_digest();
        summary
    }

    /// True when the device carried an attack and never classified a
    /// matching incident.
    pub fn missed_detection(&self) -> bool {
        self.attack.is_some() && self.detected_at.is_none()
    }

    /// SHA-256 over the canonical little-endian encoding of the record
    /// (excluding the digest field itself).
    pub fn compute_digest(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"cres-fleet/device-summary/v1");
        h.update(&self.device.to_le_bytes());
        h.update(self.profile.to_string().as_bytes());
        h.update(&self.seed.to_le_bytes());
        match &self.attack {
            Some(name) => {
                h.update(&[1]);
                h.update(&(name.len() as u32).to_le_bytes());
                h.update(name.as_bytes());
            }
            None => h.update(&[0]),
        }
        for field in [self.first_injection, self.detected_at] {
            match field {
                Some(cycle) => {
                    h.update(&[1]);
                    h.update(&cycle.to_le_bytes());
                }
                None => h.update(&[0]),
            }
        }
        h.update(&self.attacker_wins.to_le_bytes());
        h.update(&self.availability.to_bits().to_le_bytes());
        h.update(self.final_health.to_string().as_bytes());
        h.update(&self.critical_steps.to_le_bytes());
        h.update(&self.total_incidents.to_le_bytes());
        h.update(&(self.evidence_len as u64).to_le_bytes());
        h.update(&[u8::from(self.evidence_chain_ok)]);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_platform::campaign::ScenarioSpec;
    use cres_platform::runner::ScenarioRunner;
    use cres_platform::PlatformConfig;
    use cres_sim::{SimDuration, SimTime};

    fn run(seed: u64) -> RunReport {
        let spec = ScenarioSpec::quiet(SimDuration::cycles(60_000)).attack(
            "network-flood",
            SimTime::at_cycle(20_000),
            SimDuration::cycles(2_000),
        );
        let scenario = spec
            .materialise(&cres_attacks::catalog::try_build)
            .expect("known attack");
        ScenarioRunner::new(PlatformConfig::new(PlatformProfile::CyberResilient, seed))
            .run(scenario)
    }

    #[test]
    fn summary_distils_the_report() {
        let report = run(7);
        let summary = DeviceSummary::from_report(3, &report);
        assert_eq!(summary.device, 3);
        assert_eq!(summary.attack.as_deref(), Some("network-flood"));
        assert_eq!(summary.availability, report.availability);
        assert_eq!(summary.evidence_chain_ok, report.evidence_chain_ok);
        assert!(!summary.missed_detection(), "flood should be detected");
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let report = run(7);
        let a = DeviceSummary::from_report(3, &report);
        let b = DeviceSummary::from_report(3, &report);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.digest, a.compute_digest());
        let c = DeviceSummary::from_report(4, &report);
        assert_ne!(a.digest, c.digest, "device id must alter the digest");
        let mut d = a.clone();
        d.availability -= 0.001;
        assert_ne!(a.digest, d.compute_digest());
    }
}
