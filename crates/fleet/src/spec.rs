//! Device-cell forking: one base seed, N heterogeneous device specs.
//!
//! Every per-device decision — topology profile, firmware batch, attack
//! exposure, timing jitter — is drawn from a dedicated
//! [`DetRng`] stream forked from the fleet's base seed
//! with a `device/<id>` tag (splitmix64 seeding under the hood), so:
//!
//! * distinct devices get statistically independent streams,
//! * the same `(base_seed, device_id)` pair always produces the same
//!   [`DeviceSpec`] and therefore the same `RunReport`, on any worker —
//!   which is what makes fleet verdicts worker-count invariant.
//!
//! Platform *provisioning* (RSA keygen, image signing) is deliberately
//! **not** forked per device: devices share a small number of firmware
//! [batches](FleetConfig::batches), and every device in a batch uses the
//! batch's config seed. That mirrors reality (one key ceremony per
//! hardware batch, not per unit) and keeps the per-worker provisioning
//! cache warm — distinct provisioning cells per worker = `batches ×
//! distinct TEE deployments`, comfortably under the pool's cache cap.

use cres_platform::campaign::ScenarioSpec;
use cres_platform::{PlatformConfig, PlatformProfile};
use cres_sim::{DetRng, SimDuration, SimTime};

/// Which attacks the fleet faces and how much of it is exposed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackMix {
    /// Catalog names attacked devices draw from (uniformly, per-device
    /// stream). Empty means a quiet fleet.
    pub attacks: Vec<String>,
    /// Fraction of devices attacked, in permille (0..=1000).
    pub attacked_per_mille: u32,
}

impl AttackMix {
    /// No attacks anywhere: the false-positive / throughput baseline.
    pub fn quiet() -> Self {
        AttackMix {
            attacks: Vec::new(),
            attacked_per_mille: 0,
        }
    }

    /// The standard heterogeneous mix: five runtime attack classes
    /// spanning the monitor fleet, hitting 40% of devices.
    pub fn standard() -> Self {
        AttackMix {
            attacks: [
                "network-flood",
                "code-injection",
                "sensor-spoof",
                "memory-probe",
                "exfiltration",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            attacked_per_mille: 400,
        }
    }

    /// A coordinated campaign: one signature on 60% of the fleet — the
    /// cross-device correlation target.
    pub fn campaign(name: impl Into<String>) -> Self {
        AttackMix {
            attacks: vec![name.into()],
            attacked_per_mille: 600,
        }
    }
}

/// Fleet-level configuration: everything a fleet run is a pure function
/// of (together with the injector builder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of devices simulated.
    pub devices: u32,
    /// Base seed every device stream is forked from.
    pub base_seed: u64,
    /// Simulated duration per device, in cycles.
    pub device_cycles: u64,
    /// Firmware/hardware batches: devices in a batch share a provisioning
    /// cell (config seed), bounding per-worker provisioning misses.
    pub batches: u32,
    /// The attack exposure.
    pub mix: AttackMix,
    /// Per-device telemetry recorder. Off by default: fleet throughput is
    /// the headline metric and the fleet SOC consumes summaries, not
    /// trace rings.
    pub telemetry: bool,
}

impl FleetConfig {
    /// A standard-mix fleet of `devices` devices over `base_seed`.
    pub fn new(devices: u32, base_seed: u64) -> Self {
        FleetConfig {
            devices,
            base_seed,
            device_cycles: 120_000,
            batches: 2,
            mix: AttackMix::standard(),
            telemetry: false,
        }
    }
}

/// One scheduled device attack (resolved through the runner's builder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceAttack {
    /// Catalog name.
    pub name: String,
    /// First-step instant, cycles.
    pub start: u64,
    /// Step interval, cycles.
    pub interval: u64,
}

/// Everything one device run is built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Device id (0-based, dense).
    pub device: u32,
    /// Firmware batch this device belongs to.
    pub batch: u32,
    /// Topology profile.
    pub profile: PlatformProfile,
    /// Platform seed — shared by the whole batch (one key ceremony per
    /// batch), so provisioning caches across a shard.
    pub config_seed: u64,
    /// Simulated duration, cycles.
    pub cycles: u64,
    /// Jittered benign-traffic period, cycles.
    pub benign_period: u64,
    /// The device's attack, if this device is in the exposed fraction.
    pub attack: Option<DeviceAttack>,
}

/// The forked per-device RNG stream: a pure function of
/// `(base_seed, device_id)`.
pub fn device_stream(base_seed: u64, device: u32) -> DetRng {
    DetRng::seed_from(base_seed).fork(&format!("device/{device}"))
}

/// The batch config seed: a pure function of `(base_seed, batch)`.
pub fn batch_seed(base_seed: u64, batch: u32) -> u64 {
    DetRng::seed_from(base_seed)
        .fork(&format!("batch/{batch}"))
        .next_u64()
}

impl DeviceSpec {
    /// Forks device `id`'s spec out of the fleet config. Deterministic:
    /// the same `(config, id)` always yields the same spec, on any worker.
    pub fn generate(config: &FleetConfig, id: u32) -> DeviceSpec {
        let mut rng = device_stream(config.base_seed, id);
        let batch = if config.batches <= 1 {
            0
        } else {
            (rng.next_u32()) % config.batches
        };
        // 60 / 20 / 20 profile split: mostly the paper's proposal, with
        // passive-trust and shared-TEE stragglers a real fleet would carry.
        let profile = match rng.next_u32() % 10 {
            0..=5 => PlatformProfile::CyberResilient,
            6 | 7 => PlatformProfile::PassiveTrust,
            _ => PlatformProfile::TeeShared,
        };
        let benign_period = rng.range_u64(1_800, 2_400);
        let attacked = !config.mix.attacks.is_empty()
            && u64::from(rng.next_u32() % 1_000) < u64::from(config.mix.attacked_per_mille);
        let attack = attacked.then(|| {
            let index = rng.range_u64(0, config.mix.attacks.len() as u64) as usize;
            DeviceAttack {
                name: config.mix.attacks[index].clone(),
                // after syscall training, with room for detection before
                // the horizon
                start: rng.range_u64(30_000, 60_000),
                interval: rng.range_u64(1_500, 3_500),
            }
        });
        DeviceSpec {
            device: id,
            batch,
            profile,
            config_seed: batch_seed(config.base_seed, batch),
            cycles: config.device_cycles,
            benign_period,
            attack,
        }
    }

    /// The platform configuration for this device.
    pub fn platform_config(&self, telemetry: bool) -> PlatformConfig {
        let mut config = PlatformConfig::new(self.profile, self.config_seed);
        config.telemetry.enabled = telemetry;
        config
    }

    /// The scenario spec for this device (materialised by the runner
    /// through its injector builder).
    pub fn scenario_spec(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::quiet(SimDuration::cycles(self.cycles));
        spec.benign_packet_period = Some(SimDuration::cycles(self.benign_period));
        if let Some(attack) = &self.attack {
            spec = spec.attack(
                attack.name.clone(),
                SimTime::at_cycle(attack.start),
                SimDuration::cycles(attack.interval),
            );
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_generation_is_deterministic() {
        let config = FleetConfig::new(64, 7);
        for id in [0u32, 1, 63] {
            assert_eq!(
                DeviceSpec::generate(&config, id),
                DeviceSpec::generate(&config, id)
            );
        }
    }

    #[test]
    fn batches_bound_provisioning_cells() {
        let config = FleetConfig::new(256, 11);
        let mut seeds = std::collections::BTreeSet::new();
        for id in 0..config.devices {
            seeds.insert(DeviceSpec::generate(&config, id).config_seed);
        }
        assert!(seeds.len() <= config.batches as usize);
        assert!(!seeds.is_empty());
    }

    #[test]
    fn quiet_mix_never_attacks() {
        let mut config = FleetConfig::new(128, 3);
        config.mix = AttackMix::quiet();
        for id in 0..config.devices {
            assert_eq!(DeviceSpec::generate(&config, id).attack, None);
        }
    }

    #[test]
    fn campaign_mix_hits_one_signature() {
        let mut config = FleetConfig::new(200, 5);
        config.mix = AttackMix::campaign("network-flood");
        let mut attacked = 0u32;
        for id in 0..config.devices {
            if let Some(attack) = DeviceSpec::generate(&config, id).attack {
                assert_eq!(attack.name, "network-flood");
                assert!((30_000..60_000).contains(&attack.start));
                attacked += 1;
            }
        }
        // 60% nominal exposure: allow generous sampling slack
        assert!((80..=160).contains(&attacked), "attacked {attacked}/200");
    }
}
