#![deny(missing_docs)]

//! Fleet-scale CRES simulation: N device platforms behind one fleet SOC.
//!
//! The rest of the workspace simulates *one* embedded platform; critical
//! infrastructure is a fleet. This crate instantiates N heterogeneous
//! device platforms — profile, firmware batch and RNG stream forked per
//! device from one base seed (see [`spec`]) — executes them through a
//! sharded work-stealing runner (one shard per worker, each worker owning
//! its own `PlatformPool` so the warm path stays allocation-light and
//! lock-free — see [`runner`]), and feeds compact per-device summaries
//! into a streaming fleet SOC ([`soc`]) that runs *cross-device*
//! correlation without ever materialising all N full `RunReport`s at
//! once:
//!
//! * **coordinated campaigns** — the same attack signature landing on many
//!   devices raises a fleet-level incident;
//! * **lateral-movement timelines** — per-signature injection onsets on
//!   the shared sim clock, chained when consecutive onsets fall inside a
//!   propagation window;
//! * **fleet-wide quarantine** — devices that lost their attack (missed
//!   detection, attacker wins, broken evidence chain) are quarantined
//!   individually, and a confirmed campaign escalates to quarantining
//!   every device carrying the signature.
//!
//! Memory stays bounded end to end: workers ship [`summary::DeviceSummary`]
//! values (a few dozen bytes plus the attack name) through a bounded
//! channel, the aggregator's reorder buffer is capped by a backpressure
//! watermark ([`runner::REORDER_WINDOW`]), and fleet evidence is an
//! incremental
//! [`cres_crypto::merkle::MerkleAccumulator`] over per-device summary
//! digests (O(log n) state).
//!
//! The fleet verdict is **bit-identical across worker counts**: the SOC
//! ingests summaries strictly in device order (the aggregator reorders
//! in-flight completions), so 1, 2 and 8 workers produce byte-equal
//! [`soc::FleetVerdict`] JSON — pinned by `tests/fleet_determinism.rs`.
//!
//! # Quickstart
//!
//! ```
//! use cres_fleet::{run_fleet, FleetConfig};
//!
//! let config = FleetConfig::new(24, 42);
//! let report = run_fleet(&config, 2, cres_attacks::catalog::try_build).unwrap();
//! assert_eq!(report.verdict.devices, 24);
//! assert!(report.devices_per_sec > 0.0);
//! // the verdict is a pure function of the config, not of the worker count
//! let again = run_fleet(&config, 1, cres_attacks::catalog::try_build).unwrap();
//! assert_eq!(report.verdict.to_json(), again.verdict.to_json());
//! ```

pub mod runner;
pub mod soc;
pub mod spec;
pub mod summary;

pub use runner::{
    run_fleet, run_fleet_observed, run_fleet_with, FleetError, FleetReport, ShardStats,
    REORDER_WINDOW,
};
pub use soc::{FleetIncident, FleetSoc, FleetSocConfig, FleetVerdict, SignatureTrack};
pub use spec::{AttackMix, DeviceAttack, DeviceSpec, FleetConfig};
pub use summary::DeviceSummary;
