//! The streaming fleet SOC: cross-device correlation over summaries.
//!
//! One device's SSM sees only its own monitors; an operator of critical
//! infrastructure needs the *fleet* picture. [`FleetSoc`] ingests
//! [`DeviceSummary`] values one at a time
//! — strictly in device order, which is what makes the verdict a pure
//! function of the fleet config rather than of worker scheduling — and
//! maintains only bounded state:
//!
//! * per-signature tracks (one per attack catalog name: counts plus a
//!   capped onset timeline),
//! * fleet health/availability tallies,
//! * a bounded quarantine sample,
//! * an incremental [`MerkleAccumulator`] over summary digests (O(log n)
//!   peaks) — the fleet evidence root an auditor can later check device
//!   summaries against.
//!
//! [`FleetSoc::finish`] turns the accumulated state into a
//! [`FleetVerdict`]: coordinated-campaign incidents (same signature on
//! ≥ threshold devices), lateral-movement incidents (chains of injection
//! onsets inside a propagation window on the shared sim clock), and the
//! fleet-wide quarantine decision (individually lost devices plus
//! campaign escalation to every device carrying a confirmed signature).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cres_crypto::hex;
use cres_crypto::merkle::MerkleAccumulator;
use cres_ssm::HealthState;

use crate::summary::DeviceSummary;

/// Correlation thresholds for the fleet SOC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSocConfig {
    /// Devices sharing one signature before it counts as a coordinated
    /// campaign (and escalates quarantine to every carrier).
    pub campaign_threshold: u32,
    /// Max gap (cycles) between consecutive injection onsets for them to
    /// chain into one lateral-movement timeline.
    pub lateral_window: u64,
    /// Chained onsets before a lateral-movement incident is raised.
    pub lateral_threshold: u32,
    /// Onsets retained per signature for timeline analysis (earliest
    /// devices win; bounds SOC memory independently of fleet size).
    pub timeline_cap: usize,
    /// Quarantined device ids retained as a sample in the verdict.
    pub quarantine_sample: usize,
}

impl Default for FleetSocConfig {
    fn default() -> Self {
        FleetSocConfig {
            campaign_threshold: 3,
            lateral_window: 10_000,
            lateral_threshold: 3,
            timeline_cap: 1_024,
            quarantine_sample: 16,
        }
    }
}

/// Per-signature rollup across the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureTrack {
    /// Attack catalog name.
    pub signature: String,
    /// Devices that carried this signature.
    pub devices: u32,
    /// Carriers whose platform classified a matching incident.
    pub detected: u32,
    /// Carriers that never detected it.
    pub missed: u32,
    /// Attacker wins summed across carriers.
    pub attacker_wins: u64,
    /// Earliest injection onset across carriers, cycles.
    pub first_onset: Option<u64>,
    /// Latest injection onset across carriers, cycles.
    pub last_onset: Option<u64>,
    /// Longest chain of onsets with consecutive gaps inside the lateral
    /// window (1 = isolated events, no propagation pattern).
    pub max_chain: u32,
}

/// A fleet-level incident raised by cross-device correlation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetIncident {
    /// One signature landed on at least `campaign_threshold` devices.
    CoordinatedCampaign {
        /// Attack catalog name.
        signature: String,
        /// Carrier count.
        devices: u32,
        /// Carriers that detected it on-device.
        detected: u32,
    },
    /// Injection onsets for one signature chained inside the lateral
    /// window — the timing fingerprint of device-to-device propagation.
    LateralMovement {
        /// Attack catalog name.
        signature: String,
        /// Chain length (devices).
        chain: u32,
        /// First onset in the longest chain, cycles.
        onset: u64,
    },
}

/// The fleet-wide outcome: what the operator acts on.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetVerdict {
    /// Devices ingested.
    pub devices: u32,
    /// Devices that carried an attack.
    pub attacked: u32,
    /// Attacked devices that detected it on-device.
    pub detected: u32,
    /// Attacked devices that never detected it.
    pub missed: u32,
    /// Attacker wins summed across the fleet.
    pub attacker_wins: u64,
    /// Mean service availability (summed in device order).
    pub mean_availability: f64,
    /// Worst single-device availability.
    pub min_availability: f64,
    /// Final health state histogram.
    pub health: BTreeMap<String, u32>,
    /// Per-signature rollups, ordered by signature name.
    pub signatures: Vec<SignatureTrack>,
    /// Fleet incidents, campaigns first, then lateral movement, each
    /// ordered by signature name.
    pub incidents: Vec<FleetIncident>,
    /// Devices quarantined: individually lost (missed detection, attacker
    /// wins, broken evidence chain, compromised at end) plus campaign
    /// escalation of every carrier of a confirmed signature.
    pub quarantined: u32,
    /// First few quarantined device ids (individual decisions, in device
    /// order).
    pub quarantine_sample: Vec<u32>,
    /// Leaves folded into the fleet evidence accumulator.
    pub evidence_leaves: u64,
    /// Fleet evidence root over per-device summary digests.
    pub evidence_root: Option<[u8; 32]>,
}

impl FleetVerdict {
    /// Canonical JSON: fixed key order, device-order floats, hex root.
    /// Byte-equal across worker counts for the same fleet config — the
    /// artifact the determinism suite diffs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"devices\":{},\"attacked\":{},\"detected\":{},\"missed\":{},\"attacker_wins\":{}",
            self.devices, self.attacked, self.detected, self.missed, self.attacker_wins
        );
        let _ = write!(
            out,
            ",\"quarantined\":{},\"quarantine_sample\":[",
            self.quarantined
        );
        for (i, id) in self.quarantine_sample.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{id}");
        }
        let _ = write!(
            out,
            "],\"mean_availability\":{},\"min_availability\":{},\"health\":{{",
            self.mean_availability, self.min_availability
        );
        for (i, (state, count)) in self.health.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{state}\":{count}");
        }
        out.push_str("},\"signatures\":[");
        for (i, track) in self.signatures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"signature\":\"{}\",\"devices\":{},\"detected\":{},\"missed\":{},\"attacker_wins\":{},\"first_onset\":{},\"last_onset\":{},\"max_chain\":{}}}",
                track.signature,
                track.devices,
                track.detected,
                track.missed,
                track.attacker_wins,
                json_opt(track.first_onset),
                json_opt(track.last_onset),
                track.max_chain
            );
        }
        out.push_str("],\"incidents\":[");
        for (i, incident) in self.incidents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match incident {
                FleetIncident::CoordinatedCampaign {
                    signature,
                    devices,
                    detected,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"coordinated-campaign\",\"signature\":\"{signature}\",\"devices\":{devices},\"detected\":{detected}}}"
                    );
                }
                FleetIncident::LateralMovement {
                    signature,
                    chain,
                    onset,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"lateral-movement\",\"signature\":\"{signature}\",\"chain\":{chain},\"onset\":{onset}}}"
                    );
                }
            }
        }
        let _ = write!(out, "],\"evidence_leaves\":{}", self.evidence_leaves);
        match &self.evidence_root {
            Some(root) => {
                let _ = write!(out, ",\"evidence_root\":\"{}\"", hex::encode(root));
            }
            None => out.push_str(",\"evidence_root\":null"),
        }
        out.push('}');
        out
    }
}

fn json_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

#[derive(Debug, Default)]
struct SigState {
    devices: u32,
    detected: u32,
    missed: u32,
    attacker_wins: u64,
    quarantined: u32,
    /// (onset, device), capped at `timeline_cap`, appended in device order.
    timeline: Vec<(u64, u32)>,
    timeline_dropped: u32,
}

/// The streaming aggregator. Feed summaries **in device order** via
/// [`ingest`](FleetSoc::ingest), then call [`finish`](FleetSoc::finish).
#[derive(Debug)]
pub struct FleetSoc {
    config: FleetSocConfig,
    next_device: u32,
    attacked: u32,
    detected: u32,
    missed: u32,
    attacker_wins: u64,
    availability_sum: f64,
    min_availability: f64,
    health: BTreeMap<String, u32>,
    signatures: BTreeMap<String, SigState>,
    quarantined: u32,
    quarantine_sample: Vec<u32>,
    evidence: MerkleAccumulator,
}

impl FleetSoc {
    /// An empty SOC with the given thresholds.
    pub fn new(config: FleetSocConfig) -> Self {
        FleetSoc {
            config,
            next_device: 0,
            attacked: 0,
            detected: 0,
            missed: 0,
            attacker_wins: 0,
            availability_sum: 0.0,
            min_availability: 1.0,
            health: BTreeMap::new(),
            signatures: BTreeMap::new(),
            quarantined: 0,
            quarantine_sample: Vec::new(),
            evidence: MerkleAccumulator::new(),
        }
    }

    /// Devices ingested so far (also the next expected device id).
    pub fn ingested(&self) -> u32 {
        self.next_device
    }

    /// Folds one device summary into the fleet state.
    ///
    /// # Panics
    ///
    /// Panics if `summary.device` is not the next expected id: in-order
    /// ingestion is the invariant that makes verdicts worker-count
    /// invariant, so a violation is a runner bug, not a recoverable
    /// condition.
    pub fn ingest(&mut self, summary: &DeviceSummary) {
        assert_eq!(
            summary.device, self.next_device,
            "fleet SOC requires in-order ingestion (got device {}, expected {})",
            summary.device, self.next_device
        );
        self.next_device += 1;
        self.availability_sum += summary.availability;
        if summary.availability < self.min_availability {
            self.min_availability = summary.availability;
        }
        *self
            .health
            .entry(summary.final_health.to_string())
            .or_insert(0) += 1;
        self.attacker_wins += u64::from(summary.attacker_wins);
        let quarantine = summary.missed_detection()
            || summary.attacker_wins > 0
            || !summary.evidence_chain_ok
            || summary.final_health == HealthState::Compromised;
        if quarantine {
            self.quarantined += 1;
            if self.quarantine_sample.len() < self.config.quarantine_sample {
                self.quarantine_sample.push(summary.device);
            }
        }
        if let Some(signature) = &summary.attack {
            self.attacked += 1;
            let sig = self.signatures.entry(signature.clone()).or_default();
            sig.devices += 1;
            sig.attacker_wins += u64::from(summary.attacker_wins);
            if quarantine {
                sig.quarantined += 1;
            }
            if summary.detected_at.is_some() {
                self.detected += 1;
                sig.detected += 1;
            } else {
                self.missed += 1;
                sig.missed += 1;
            }
            if let Some(onset) = summary.first_injection {
                if sig.timeline.len() < self.config.timeline_cap {
                    sig.timeline.push((onset, summary.device));
                } else {
                    sig.timeline_dropped += 1;
                }
            }
        }
        self.evidence.append_digest(&summary.digest);
    }

    /// Correlates the accumulated state into the fleet verdict.
    pub fn finish(self) -> FleetVerdict {
        let devices = self.next_device;
        let mut signatures = Vec::with_capacity(self.signatures.len());
        let mut campaigns = Vec::new();
        let mut lateral = Vec::new();
        let mut quarantined = self.quarantined;
        for (name, mut sig) in self.signatures {
            sig.timeline.sort_unstable();
            let (max_chain, chain_onset) = longest_chain(&sig.timeline, self.config.lateral_window);
            if sig.devices >= self.config.campaign_threshold {
                campaigns.push(FleetIncident::CoordinatedCampaign {
                    signature: name.clone(),
                    devices: sig.devices,
                    detected: sig.detected,
                });
                // campaign escalation: quarantine every carrier not
                // already individually quarantined
                quarantined += sig.devices - sig.quarantined;
            }
            if max_chain >= self.config.lateral_threshold {
                lateral.push(FleetIncident::LateralMovement {
                    signature: name.clone(),
                    chain: max_chain,
                    onset: chain_onset,
                });
            }
            signatures.push(SignatureTrack {
                signature: name,
                devices: sig.devices,
                detected: sig.detected,
                missed: sig.missed,
                attacker_wins: sig.attacker_wins,
                first_onset: sig.timeline.first().map(|&(onset, _)| onset),
                last_onset: sig.timeline.last().map(|&(onset, _)| onset),
                max_chain,
            });
        }
        let mut incidents = campaigns;
        incidents.extend(lateral);
        FleetVerdict {
            devices,
            attacked: self.attacked,
            detected: self.detected,
            missed: self.missed,
            attacker_wins: self.attacker_wins,
            mean_availability: if devices == 0 {
                1.0
            } else {
                self.availability_sum / f64::from(devices)
            },
            min_availability: self.min_availability,
            health: self.health,
            signatures,
            incidents,
            quarantined,
            quarantine_sample: self.quarantine_sample,
            evidence_leaves: self.evidence.leaf_count(),
            evidence_root: self.evidence.root(),
        }
    }
}

/// Longest run of onsets with consecutive gaps ≤ `window`, over a
/// timeline sorted by onset. Returns `(length, first onset of the run)`;
/// `(0, 0)` for an empty timeline, `(1, t0)` when nothing chains.
fn longest_chain(sorted: &[(u64, u32)], window: u64) -> (u32, u64) {
    let Some(&(first, _)) = sorted.first() else {
        return (0, 0);
    };
    let (mut best, mut best_onset) = (1u32, first);
    let (mut run, mut run_onset) = (1u32, first);
    for pair in sorted.windows(2) {
        let (prev, next) = (pair[0].0, pair[1].0);
        if next - prev <= window {
            run += 1;
        } else {
            run = 1;
            run_onset = next;
        }
        if run > best {
            best = run;
            best_onset = run_onset;
        }
    }
    (best, best_onset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_platform::PlatformProfile;

    fn summary(device: u32, attack: Option<(&str, u64, bool)>) -> DeviceSummary {
        let (name, onset, detected) = match attack {
            Some((n, o, d)) => (Some(n.to_string()), Some(o), d),
            None => (None, None, false),
        };
        let mut s = DeviceSummary {
            device,
            profile: PlatformProfile::CyberResilient,
            seed: 1,
            attack: name,
            first_injection: onset,
            detected_at: detected.then(|| onset.unwrap_or(0) + 500),
            attacker_wins: 0,
            availability: 0.99,
            final_health: HealthState::Healthy,
            critical_steps: 100,
            total_incidents: u64::from(detected),
            evidence_len: 10,
            evidence_chain_ok: true,
            digest: [0; 32],
        };
        s.digest = s.compute_digest();
        s
    }

    #[test]
    fn campaign_threshold_raises_incident_and_escalates_quarantine() {
        let mut soc = FleetSoc::new(FleetSocConfig::default());
        for d in 0..5 {
            soc.ingest(&summary(
                d,
                Some(("code-injection", 40_000 + 50_000 * u64::from(d), true)),
            ));
        }
        soc.ingest(&summary(5, None));
        let verdict = soc.finish();
        assert_eq!(verdict.devices, 6);
        assert_eq!(verdict.attacked, 5);
        assert!(matches!(
            verdict.incidents.first(),
            Some(FleetIncident::CoordinatedCampaign { devices: 5, .. })
        ));
        // all detected, none individually lost — but the campaign
        // escalates to every carrier
        assert_eq!(verdict.quarantined, 5);
    }

    #[test]
    fn lateral_movement_needs_chained_onsets() {
        let config = FleetSocConfig {
            campaign_threshold: 100,
            ..FleetSocConfig::default()
        };
        let mut soc = FleetSoc::new(config.clone());
        // gaps of 4k cycles — inside the 10k window — for devices 0..3
        for d in 0..4u32 {
            soc.ingest(&summary(
                d,
                Some(("memory-probe", 30_000 + 4_000 * u64::from(d), true)),
            ));
        }
        // an isolated straggler far later
        soc.ingest(&summary(4, Some(("memory-probe", 900_000, true))));
        let verdict = soc.finish();
        let lateral: Vec<_> = verdict
            .incidents
            .iter()
            .filter(|i| matches!(i, FleetIncident::LateralMovement { .. }))
            .collect();
        assert_eq!(lateral.len(), 1);
        assert!(matches!(
            lateral[0],
            FleetIncident::LateralMovement {
                chain: 4,
                onset: 30_000,
                ..
            }
        ));

        // spread the same onsets out and the chain dissolves
        let mut soc = FleetSoc::new(config);
        for d in 0..4u32 {
            soc.ingest(&summary(
                d,
                Some(("memory-probe", 30_000 + 40_000 * u64::from(d), true)),
            ));
        }
        let verdict = soc.finish();
        assert!(verdict.incidents.is_empty());
        assert_eq!(verdict.signatures[0].max_chain, 1);
    }

    #[test]
    fn missed_detection_quarantines_individually() {
        let mut soc = FleetSoc::new(FleetSocConfig::default());
        soc.ingest(&summary(0, Some(("exfiltration", 40_000, false))));
        soc.ingest(&summary(1, None));
        let verdict = soc.finish();
        assert_eq!(verdict.missed, 1);
        assert_eq!(verdict.quarantined, 1);
        assert_eq!(verdict.quarantine_sample, vec![0]);
    }

    #[test]
    fn out_of_order_ingest_panics() {
        let mut soc = FleetSoc::new(FleetSocConfig::default());
        soc.ingest(&summary(0, None));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            soc.ingest(&summary(2, None));
        }));
        assert!(err.is_err());
    }

    #[test]
    fn verdict_json_is_canonical_and_stable() {
        let build = || {
            let mut soc = FleetSoc::new(FleetSocConfig::default());
            for d in 0..4 {
                soc.ingest(&summary(
                    d,
                    Some(("network-flood", 35_000 + 2_000 * u64::from(d), true)),
                ));
            }
            soc.ingest(&summary(4, None));
            soc.finish()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        let json = a.to_json();
        assert_eq!(json, b.to_json());
        assert!(json.starts_with("{\"devices\":5,"));
        assert!(json.contains("\"evidence_root\":\""));
        assert!(json.contains("\"kind\":\"coordinated-campaign\""));
        assert_eq!(a.evidence_leaves, 5);
    }

    #[test]
    fn empty_fleet_has_null_root() {
        let verdict = FleetSoc::new(FleetSocConfig::default()).finish();
        assert_eq!(verdict.devices, 0);
        assert_eq!(verdict.evidence_root, None);
        assert!(verdict.to_json().contains("\"evidence_root\":null"));
    }
}
