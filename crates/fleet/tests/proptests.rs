//! Property tests for device-cell forking: the fleet's determinism rests
//! on per-device RNG streams being (a) pure functions of
//! `(base_seed, device_id)` and (b) actually distinct across devices, so
//! no two devices accidentally share a stream and no worker schedule can
//! perturb a spec.

use cres_fleet::spec::{batch_seed, device_stream, AttackMix, DeviceSpec, FleetConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distinct devices fork distinct RNG streams: the first few draws
    /// never coincide (xoshiro256** streams seeded via splitmix64 over
    /// different tags collide with negligible probability, so a hit here
    /// means the fork tag is being ignored).
    #[test]
    fn distinct_devices_fork_distinct_streams(base: u64, a in 0u32..10_000, delta in 1u32..10_000) {
        let b = a.wrapping_add(delta);
        let mut sa = device_stream(base, a);
        let mut sb = device_stream(base, b);
        let da: Vec<u64> = (0..4).map(|_| sa.next_u64()).collect();
        let db: Vec<u64> = (0..4).map(|_| sb.next_u64()).collect();
        prop_assert_ne!(da, db, "devices {} and {} share a stream", a, b);
    }

    /// The same `(base_seed, device)` always yields the same stream — on
    /// any thread, in any order.
    #[test]
    fn same_device_forks_identical_streams(base: u64, id in 0u32..100_000) {
        let mut first = device_stream(base, id);
        let mut second = device_stream(base, id);
        for _ in 0..8 {
            prop_assert_eq!(first.next_u64(), second.next_u64());
        }
    }

    /// Base seeds separate fleets: the same device id under different
    /// base seeds draws differently.
    #[test]
    fn base_seed_separates_fleets(base: u64, delta in 1u64..1_000_000, id in 0u32..10_000) {
        let mut sa = device_stream(base, id);
        let mut sb = device_stream(base.wrapping_add(delta), id);
        let da: Vec<u64> = (0..4).map(|_| sa.next_u64()).collect();
        let db: Vec<u64> = (0..4).map(|_| sb.next_u64()).collect();
        prop_assert_ne!(da, db);
    }

    /// Spec generation is pure and structurally sane for any config cell.
    #[test]
    fn generated_specs_are_pure_and_sane(
        base: u64,
        devices in 1u32..200,
        batches in 1u32..8,
        attacked_per_mille in 0u32..=1000,
        id_frac in any::<prop::sample::Index>()
    ) {
        let mut config = FleetConfig::new(devices, base);
        config.batches = batches;
        config.mix = AttackMix {
            attacks: AttackMix::standard().attacks,
            attacked_per_mille,
        };
        let id = id_frac.index(devices as usize) as u32;
        let spec = DeviceSpec::generate(&config, id);
        prop_assert_eq!(spec.clone(), DeviceSpec::generate(&config, id));
        prop_assert_eq!(spec.device, id);
        prop_assert!(spec.batch < batches);
        prop_assert_eq!(spec.config_seed, batch_seed(base, spec.batch));
        prop_assert!((1_800..2_400).contains(&spec.benign_period));
        if attacked_per_mille == 0 {
            prop_assert_eq!(spec.attack, None);
        } else if let Some(attack) = &spec.attack {
            prop_assert!((30_000..60_000).contains(&attack.start));
            prop_assert!((1_500..3_500).contains(&attack.interval));
            prop_assert!(attack.start + 2 * attack.interval < spec.cycles,
                "attack must have room to run before the horizon");
        }
    }

    /// Batch seeds are distinct across batches (provisioning cells do not
    /// alias) and stable per batch.
    #[test]
    fn batch_seeds_are_distinct_and_stable(base: u64, batches in 2u32..8) {
        let seeds: Vec<u64> = (0..batches).map(|b| batch_seed(base, b)).collect();
        let unique: std::collections::BTreeSet<u64> = seeds.iter().copied().collect();
        prop_assert_eq!(unique.len(), seeds.len(), "batch seeds alias: {:?}", seeds);
        for (b, &seed) in seeds.iter().enumerate() {
            prop_assert_eq!(seed, batch_seed(base, b as u32));
        }
    }
}
