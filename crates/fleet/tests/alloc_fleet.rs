//! The fleet-level allocation ratchet: once a shard's pool has seen every
//! provisioning cell, each further device must cost bounded heap — spec
//! forking, one summary, and the warm pooled run itself — with no
//! re-provisioning (RSA keygen, ~600k allocs) sneaking back in. Runs the
//! exact per-device body the fleet worker runs, minus threads and
//! channels, so the count is stable under CI scheduling.

use cres_fleet::spec::{DeviceSpec, FleetConfig};
use cres_fleet::summary::DeviceSummary;
use cres_platform::runner::ScenarioRunner;
use cres_platform::PlatformPool;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Hard per-device ceiling for a warm shard (60k-cycle device). A warm
/// pooled 100k-cycle run costs ~25k allocations (see `alloc_campaign` in
/// cres-platform); the fleet adds spec forking and a summary on top.
/// Re-provisioning alone would blow through this 10x over.
const WARM_DEVICE_ALLOC_CEILING: u64 = 50_000;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn run_device(config: &FleetConfig, pool: &mut PlatformPool, id: u32) -> DeviceSummary {
    let spec = DeviceSpec::generate(config, id);
    let scenario = spec
        .scenario_spec()
        .materialise(&cres_attacks::catalog::try_build)
        .expect("catalog attack");
    let report =
        ScenarioRunner::new(spec.platform_config(config.telemetry)).run_pooled(pool, scenario);
    DeviceSummary::from_report(id, &report)
}

#[test]
fn warm_shard_devices_stay_under_alloc_ceiling() {
    let mut config = FleetConfig::new(40, 42);
    config.device_cycles = 60_000;
    let mut pool = PlatformPool::new();

    // Warm-up: enough devices to touch every provisioning cell
    // (batches × TEE deployments) and grow every lazily sized buffer.
    for id in 0..24 {
        run_device(&config, &mut pool, id);
    }
    let (_, misses_warm) = pool.provision_cache_stats();

    const MEASURED: u64 = 16;
    let before = ALLOCS.load(Ordering::Relaxed);
    for id in 24..40 {
        let summary = run_device(&config, &mut pool, id);
        assert_eq!(summary.device, id);
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    let (_, misses_after) = pool.provision_cache_stats();
    assert_eq!(
        misses_warm, misses_after,
        "a provisioning cell was first seen inside the measured window; \
         extend the warm-up"
    );
    let per_device = (after - before) / MEASURED;
    assert!(
        per_device <= WARM_DEVICE_ALLOC_CEILING,
        "warm fleet device cost {per_device} heap allocations \
         (ceiling {WARM_DEVICE_ALLOC_CEILING}); provisioning caching or \
         platform recycling regressed in the fleet path"
    );
    let stats = pool.stats();
    assert!(
        stats.hit_rate() >= 0.9,
        "steady-state shard pool hit rate {:.3} < 0.9 ({stats:?})",
        stats.hit_rate()
    );
}
