//! The canonical name → injector catalog.
//!
//! Everything that schedules attacks by name — the campaign engine, the
//! scenario DSL and the generative fuzzer — resolves through this one
//! table, so "which attacks exist" has a single enumerable answer instead
//! of being scattered across experiment binaries.
//!
//! Names come in two shapes:
//!
//! * **base names** ([`NAMES`]) — one per [`AttackKind`] variant, equal to
//!   the injector's [`AttackInjector::name`] (e.g. `"network-flood"`);
//! * **variants** ([`VARIANTS`]) — a base name plus a `:suffix` selecting a
//!   different *inject point* for the same attack class (e.g.
//!   `"memory-probe:tee"` scans only the TEE window, `"dma-exfil:periph"`
//!   stages the stolen secret into the peripheral egress window).
//!
//! Resolution is fallible: [`try_build`] returns [`UnknownAttack`] carrying
//! the offending name rather than panicking, so a bad scenario file is a
//! diagnosable error instead of a worker-thread abort.

use crate::inject::{AttackInjector, AttackKind};
use crate::library::{
    CodeInjectionAttack, DebugPortAttack, DmaExfilAttack, DowngradeAttack, ExfilAttack,
    FaultInjectionAttack, FirmwareTamperAttack, LogWipeAttack, MalformedTrafficAttack,
    MemoryProbeAttack, NetworkFloodAttack, SensorSpoofAttack, SyscallAnomalyAttack,
    SystemHangAttack,
};
use cres_soc::addr::MasterId;
use cres_soc::periph::{EnvTamper, SensorSpoof};
use cres_soc::soc::layout;
use cres_soc::task::{BlockId, Syscall, TaskId};
use std::fmt;

/// A scenario referenced an attack name the catalog does not know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAttack {
    /// The unresolvable name, verbatim.
    pub name: String,
}

impl fmt::Display for UnknownAttack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown attack {:?}", self.name)
    }
}

impl std::error::Error for UnknownAttack {}

/// Canonical base name for every [`AttackKind`] variant, in
/// [`AttackKind::ALL`] order.
pub const NAMES: [&str; 14] = [
    "code-injection",
    "memory-probe",
    "firmware-tamper",
    "firmware-downgrade",
    "dma-exfil",
    "debug-port",
    "network-flood",
    "exploit-traffic",
    "exfiltration",
    "sensor-spoof",
    "fault-injection",
    "log-wipe",
    "syscall-anomaly",
    "system-hang",
];

/// Inject-point variants: alternative parameterisations of a base attack.
pub const VARIANTS: [&str; 8] = [
    "code-injection:telemetry",
    "memory-probe:tee",
    "memory-probe:ssm",
    "dma-exfil:periph",
    "network-flood:burst",
    "exfiltration:trickle",
    "sensor-spoof:jitter",
    "fault-injection:clock",
];

/// The canonical base name for an attack kind.
pub fn canonical_name(kind: AttackKind) -> &'static str {
    match kind {
        AttackKind::CodeInjection => "code-injection",
        AttackKind::MemoryProbe => "memory-probe",
        AttackKind::FirmwareTamper => "firmware-tamper",
        AttackKind::Downgrade => "firmware-downgrade",
        AttackKind::DmaExfil => "dma-exfil",
        AttackKind::DebugIntrusion => "debug-port",
        AttackKind::NetworkFlood => "network-flood",
        AttackKind::ExploitTraffic => "exploit-traffic",
        AttackKind::Exfiltration => "exfiltration",
        AttackKind::SensorSpoof => "sensor-spoof",
        AttackKind::FaultInjection => "fault-injection",
        AttackKind::LogWipe => "log-wipe",
        AttackKind::SyscallAnomaly => "syscall-anomaly",
        AttackKind::SystemHang => "system-hang",
    }
}

/// The attack kind a catalog name (base or variant) resolves to, without
/// constructing the injector.
pub fn kind_of(name: &str) -> Option<AttackKind> {
    let base = name.split_once(':').map_or(name, |(base, _)| base);
    AttackKind::ALL
        .into_iter()
        .find(|&kind| canonical_name(kind) == base)
        // a recognised base does not make the variant suffix valid
        .filter(|_| is_known(name))
}

/// Whether `name` resolves in the catalog.
pub fn is_known(name: &str) -> bool {
    NAMES.contains(&name) || VARIANTS.contains(&name)
}

/// Builds a fresh injector for a catalog name.
///
/// Returns [`UnknownAttack`] (carrying the name) for anything the catalog
/// does not list — callers surface this as a structured scenario error.
pub fn try_build(name: &str) -> Result<Box<dyn AttackInjector>, UnknownAttack> {
    Ok(match name {
        // hijacking to bb0 repeatedly guarantees at least one illegal
        // self-edge for the CFI monitor
        "code-injection" => Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(0), 3)),
        "code-injection:telemetry" => Box::new(CodeInjectionAttack::new(TaskId(2), BlockId(0), 3)),
        "memory-probe" => Box::new(MemoryProbeAttack::new(
            MasterId::CPU1,
            vec![
                layout::SSM_PRIVATE.0,
                layout::TEE_SECURE.0,
                layout::SSM_PRIVATE.0.offset(0x100),
                layout::TEE_SECURE.0.offset(0x100),
            ],
        )),
        "memory-probe:tee" => Box::new(MemoryProbeAttack::new(
            MasterId::CPU1,
            vec![
                layout::TEE_SECURE.0,
                layout::TEE_SECURE.0.offset(0x80),
                layout::TEE_SECURE.0.offset(0x100),
            ],
        )),
        "memory-probe:ssm" => Box::new(MemoryProbeAttack::new(
            MasterId::CPU1,
            vec![
                layout::SSM_PRIVATE.0,
                layout::SSM_PRIVATE.0.offset(0x80),
                layout::SSM_PRIVATE.0.offset(0x100),
            ],
        )),
        "firmware-tamper" => Box::new(FirmwareTamperAttack::new(
            MasterId::CPU0,
            layout::FLASH_A.0.offset(0x800),
        )),
        // a stale-but-plausible image; the anti-rollback check, not the
        // payload, is what decides the outcome
        "firmware-downgrade" => Box::new(DowngradeAttack::new(vec![0x0D; 192])),
        "dma-exfil" => Box::new(DmaExfilAttack::new(
            layout::TEE_SECURE.0,
            layout::SRAM.0.offset(0x3000),
            64,
        )),
        "dma-exfil:periph" => Box::new(DmaExfilAttack::new(
            layout::TEE_SECURE.0,
            layout::PERIPH.0.offset(0x800),
            64,
        )),
        "debug-port" => Box::new(DebugPortAttack::new(vec![
            layout::SRAM.0,
            layout::TEE_SECURE.0,
            layout::SSM_PRIVATE.0,
        ])),
        "network-flood" => Box::new(NetworkFloodAttack::new(300, 8)),
        "network-flood:burst" => Box::new(NetworkFloodAttack::new(900, 3)),
        "exploit-traffic" => Box::new(MalformedTrafficAttack::new(5, 4)),
        "exfiltration" => Box::new(ExfilAttack::new(4_096, 6)),
        "exfiltration:trickle" => Box::new(ExfilAttack::new(512, 12)),
        "sensor-spoof" => Box::new(SensorSpoofAttack::new(0, SensorSpoof::Fixed(61.5))),
        "sensor-spoof:jitter" => Box::new(SensorSpoofAttack::new(0, SensorSpoof::Jitter(25.0))),
        "fault-injection" => Box::new(FaultInjectionAttack::new(EnvTamper::VoltageGlitch(1.1))),
        "fault-injection:clock" => Box::new(FaultInjectionAttack::new(EnvTamper::ClockSkew(250.0))),
        "log-wipe" => Box::new(LogWipeAttack::new(MasterId::CPU0)),
        "syscall-anomaly" => Box::new(SyscallAnomalyAttack::new(
            TaskId(1),
            vec![Syscall::PrivEscalate, Syscall::FirmwareWrite],
            3,
        )),
        "system-hang" => Box::new(SystemHangAttack::new()),
        other => {
            return Err(UnknownAttack {
                name: other.to_string(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_a_constructible_base_name() {
        for kind in AttackKind::ALL {
            let name = canonical_name(kind);
            assert!(NAMES.contains(&name), "{name} missing from NAMES");
            let injector = try_build(name).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(injector.kind(), kind, "{name} builds the wrong kind");
            assert_eq!(injector.name(), name, "{name} report-name mismatch");
            assert!(injector.steps() > 0);
        }
        assert_eq!(NAMES.len(), AttackKind::ALL.len());
    }

    #[test]
    fn variants_build_and_share_the_base_kind() {
        for variant in VARIANTS {
            let injector = try_build(variant).unwrap_or_else(|e| panic!("{e}"));
            let (base, _) = variant.split_once(':').expect("variants carry a suffix");
            assert_eq!(injector.name(), base, "{variant}");
            assert_eq!(kind_of(variant), Some(injector.kind()), "{variant}");
        }
    }

    #[test]
    fn unknown_names_error_with_the_offending_name() {
        for bogus in ["", "meltdown", "network-flood:nope", "NETWORK-FLOOD"] {
            let err = match try_build(bogus) {
                Ok(_) => panic!("{bogus:?} must not resolve"),
                Err(e) => e,
            };
            assert_eq!(err.name, bogus);
            assert!(err.to_string().contains(bogus) || bogus.is_empty());
            assert!(!is_known(bogus));
            assert_eq!(kind_of(bogus), None);
        }
    }

    #[test]
    fn names_are_unique_across_bases_and_variants() {
        let mut seen = std::collections::HashSet::new();
        for name in NAMES.iter().chain(VARIANTS.iter()) {
            assert!(seen.insert(*name), "{name} listed twice");
        }
    }
}
