//! The attack injector trait and supporting types.

use cres_boot::SlotStore;
use cres_policy::DetectionCapability;
use cres_sim::SimTime;
use cres_soc::task::{Syscall, TaskId};
use cres_soc::Soc;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Attack taxonomy (aligned with the incident vocabulary the SSM
/// classifies into).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Control-flow hijack.
    CodeInjection,
    /// Protected-memory scanning.
    MemoryProbe,
    /// Firmware modification.
    FirmwareTamper,
    /// Firmware downgrade (replay of old signed image).
    Downgrade,
    /// DMA-based data theft.
    DmaExfil,
    /// Debug-port intrusion.
    DebugIntrusion,
    /// Network flood DoS.
    NetworkFlood,
    /// Exploit-signature traffic.
    ExploitTraffic,
    /// Bulk exfiltration.
    Exfiltration,
    /// Sensor false-data injection.
    SensorSpoof,
    /// Physical fault injection.
    FaultInjection,
    /// Anti-forensic log destruction.
    LogWipe,
    /// Behavioural (syscall) anomaly.
    SyscallAnomaly,
    /// Firmware crash / lockup (watchdog-class).
    SystemHang,
}

impl AttackKind {
    /// Every variant, for exhaustive sweeps and coverage tests. Keep in
    /// declaration order; the compiler cannot enforce completeness here, so
    /// `tests` below pins the count.
    pub const ALL: [AttackKind; 14] = [
        AttackKind::CodeInjection,
        AttackKind::MemoryProbe,
        AttackKind::FirmwareTamper,
        AttackKind::Downgrade,
        AttackKind::DmaExfil,
        AttackKind::DebugIntrusion,
        AttackKind::NetworkFlood,
        AttackKind::ExploitTraffic,
        AttackKind::Exfiltration,
        AttackKind::SensorSpoof,
        AttackKind::FaultInjection,
        AttackKind::LogWipe,
        AttackKind::SyscallAnomaly,
        AttackKind::SystemHang,
    ];
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Side effects an injector asks the platform to route (used where the
/// effect flows through a channel the injector cannot reach directly, such
/// as the syscall monitor's report path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackEffect {
    /// The compromised task "issued" these syscalls this step.
    SyscallsEmitted(TaskId, Vec<Syscall>),
}

/// The result of one injection step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackStepResult {
    /// What the attacker did (ground-truth narrative).
    pub description: String,
    /// Whether the step achieved its goal (e.g. a probe read succeeded).
    pub achieved: bool,
    /// Effects for the platform to route.
    pub effects: Vec<AttackEffect>,
}

/// Mutable handles an injector may act through. `slots` is present only on
/// platforms that expose the firmware store to the attacker's vantage
/// point.
pub struct AttackTargets<'a> {
    /// The SoC under attack.
    pub soc: &'a mut Soc,
    /// Firmware slot store, when reachable.
    pub slots: Option<&'a mut SlotStore>,
}

/// An attack injector: a multi-step adversary procedure with ground truth.
pub trait AttackInjector {
    /// Stable name for reports.
    fn name(&self) -> &'static str;

    /// Taxonomy class.
    fn kind(&self) -> AttackKind;

    /// Detection capabilities that *should* observe this attack (ground
    /// truth for scoring detection coverage).
    fn detectable_by(&self) -> Vec<DetectionCapability>;

    /// Number of steps in the attack procedure.
    fn steps(&self) -> u32;

    /// Executes step `step` (0-based) at `now`.
    fn inject_step(
        &mut self,
        step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult;

    /// Times at which steps actually executed (ground truth for latency).
    fn injection_times(&self) -> &[SimTime];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(AttackKind::CodeInjection.to_string(), "CodeInjection");
        assert_eq!(AttackKind::LogWipe.to_string(), "LogWipe");
    }

    #[test]
    fn all_lists_every_variant_once() {
        let mut seen = std::collections::HashSet::new();
        for kind in AttackKind::ALL {
            assert!(seen.insert(kind), "{kind:?} listed twice in ALL");
        }
        // exhaustiveness canary: extending the enum must extend ALL too
        let count = |kind: AttackKind| match kind {
            AttackKind::CodeInjection
            | AttackKind::MemoryProbe
            | AttackKind::FirmwareTamper
            | AttackKind::Downgrade
            | AttackKind::DmaExfil
            | AttackKind::DebugIntrusion
            | AttackKind::NetworkFlood
            | AttackKind::ExploitTraffic
            | AttackKind::Exfiltration
            | AttackKind::SensorSpoof
            | AttackKind::FaultInjection
            | AttackKind::LogWipe
            | AttackKind::SyscallAnomaly
            | AttackKind::SystemHang => 1,
        };
        assert_eq!(AttackKind::ALL.iter().map(|&k| count(k)).sum::<i32>(), 14);
    }
}
