//! The concrete attack injectors.

use crate::inject::{AttackEffect, AttackInjector, AttackKind, AttackStepResult, AttackTargets};
use cres_policy::DetectionCapability;
use cres_sim::SimTime;
use cres_soc::addr::{Addr, MasterId};
use cres_soc::periph::{DmaDescriptor, EnvTamper, Packet, PacketKind, SensorSpoof};
use cres_soc::task::{BlockId, Syscall, TaskId};

/// Control-flow hijack: forces the victim task onto illegal edges.
#[derive(Debug, Clone)]
pub struct CodeInjectionAttack {
    victim: TaskId,
    gadget: BlockId,
    steps: u32,
    times: Vec<SimTime>,
}

impl CodeInjectionAttack {
    /// Creates an attack hijacking `victim` to `gadget` for `steps` steps.
    pub fn new(victim: TaskId, gadget: BlockId, steps: u32) -> Self {
        CodeInjectionAttack {
            victim,
            gadget,
            steps,
            times: Vec::new(),
        }
    }
}

impl AttackInjector for CodeInjectionAttack {
    fn name(&self) -> &'static str {
        "code-injection"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::CodeInjection
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![DetectionCapability::ControlFlowIntegrity]
    }

    fn steps(&self) -> u32 {
        self.steps
    }

    fn inject_step(
        &mut self,
        _step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        match targets.soc.task_mut(self.victim) {
            Some(task) => {
                task.hijack(self.gadget);
                AttackStepResult {
                    description: format!("hijacked {} to gadget {}", self.victim, self.gadget),
                    achieved: true,
                    effects: vec![],
                }
            }
            None => AttackStepResult {
                description: format!("victim {} not present", self.victim),
                achieved: false,
                effects: vec![],
            },
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Meltdown-class scanning of protected memory from a compromised master.
#[derive(Debug, Clone)]
pub struct MemoryProbeAttack {
    master: MasterId,
    targets_addrs: Vec<Addr>,
    times: Vec<SimTime>,
    secrets_read: u32,
}

impl MemoryProbeAttack {
    /// Creates a probe from `master` over `targets_addrs` (one per step).
    pub fn new(master: MasterId, targets_addrs: Vec<Addr>) -> Self {
        assert!(!targets_addrs.is_empty());
        MemoryProbeAttack {
            master,
            targets_addrs,
            times: Vec::new(),
            secrets_read: 0,
        }
    }

    /// How many probe reads were *granted* — the attacker's actual win
    /// count (non-zero means the isolation failed).
    pub fn secrets_read(&self) -> u32 {
        self.secrets_read
    }
}

impl AttackInjector for MemoryProbeAttack {
    fn name(&self) -> &'static str {
        "memory-probe"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::MemoryProbe
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![
            DetectionCapability::MemoryGuard,
            DetectionCapability::BusPolicing,
        ]
    }

    fn steps(&self) -> u32 {
        self.targets_addrs.len() as u32
    }

    fn inject_step(
        &mut self,
        step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        let addr = self.targets_addrs[step as usize % self.targets_addrs.len()];
        let soc = &mut *targets.soc;
        let result = soc.bus.read(now, self.master, addr, 16, &soc.mem);
        let achieved = result.is_ok();
        if achieved {
            self.secrets_read += 1;
        }
        AttackStepResult {
            description: format!(
                "{} probed {} — {}",
                self.master,
                addr,
                if achieved { "READ SUCCEEDED" } else { "denied" }
            ),
            achieved,
            effects: vec![],
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Writes an implant into a firmware region through the bus, and corrupts
/// the active slot when the store is reachable.
#[derive(Debug, Clone)]
pub struct FirmwareTamperAttack {
    master: MasterId,
    flash_addr: Addr,
    times: Vec<SimTime>,
}

impl FirmwareTamperAttack {
    /// Creates a tamper attack from `master` writing at `flash_addr`.
    pub fn new(master: MasterId, flash_addr: Addr) -> Self {
        FirmwareTamperAttack {
            master,
            flash_addr,
            times: Vec::new(),
        }
    }
}

impl AttackInjector for FirmwareTamperAttack {
    fn name(&self) -> &'static str {
        "firmware-tamper"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::FirmwareTamper
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![
            DetectionCapability::MemoryGuard,
            DetectionCapability::BootMeasurement,
        ]
    }

    fn steps(&self) -> u32 {
        1
    }

    fn inject_step(
        &mut self,
        _step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        let implant = [0xEEu8; 32];
        let soc = &mut *targets.soc;
        let bus_result = soc
            .bus
            .write(now, self.master, self.flash_addr, &implant, &mut soc.mem);
        if let Some(slots) = targets.slots.as_deref_mut() {
            let mut corrupted = slots.active_bytes().to_vec();
            if corrupted.len() > 64 {
                corrupted[40..72].copy_from_slice(&implant);
            }
            let active = slots.active();
            slots.write_slot(active, corrupted);
        }
        AttackStepResult {
            description: format!(
                "implant write at {} — bus {}; active slot corrupted",
                self.flash_addr,
                if bus_result.is_ok() {
                    "granted"
                } else {
                    "denied"
                }
            ),
            achieved: bus_result.is_ok() || targets.slots.is_some(),
            effects: vec![],
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Replays an old, genuinely signed firmware image (the §IV downgrade).
#[derive(Debug, Clone)]
pub struct DowngradeAttack {
    old_image: Vec<u8>,
    times: Vec<SimTime>,
}

impl DowngradeAttack {
    /// Creates a downgrade staging the supplied old signed image.
    pub fn new(old_image: Vec<u8>) -> Self {
        DowngradeAttack {
            old_image,
            times: Vec::new(),
        }
    }
}

impl AttackInjector for DowngradeAttack {
    fn name(&self) -> &'static str {
        "firmware-downgrade"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::Downgrade
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![DetectionCapability::BootMeasurement]
    }

    fn steps(&self) -> u32 {
        1
    }

    fn inject_step(
        &mut self,
        _step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        match targets.slots.as_deref_mut() {
            Some(slots) => {
                let inactive = slots.active().other();
                slots.write_slot(inactive, self.old_image.clone());
                slots.set_active(inactive);
                AttackStepResult {
                    description: format!(
                        "staged old signed image into slot {inactive} and flipped active"
                    ),
                    achieved: true,
                    effects: vec![],
                }
            }
            None => AttackStepResult {
                description: "firmware store unreachable".into(),
                achieved: false,
                effects: vec![],
            },
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Programs the DMA engine to copy a secret out, then exfiltrates it.
#[derive(Debug, Clone)]
pub struct DmaExfilAttack {
    secret_addr: Addr,
    staging_addr: Addr,
    len: u64,
    times: Vec<SimTime>,
    copies_done: u32,
}

impl DmaExfilAttack {
    /// Creates a DMA theft from `secret_addr` to `staging_addr`.
    pub fn new(secret_addr: Addr, staging_addr: Addr, len: u64) -> Self {
        DmaExfilAttack {
            secret_addr,
            staging_addr,
            len,
            times: Vec::new(),
            copies_done: 0,
        }
    }

    /// Number of successful DMA copies (attacker wins).
    pub fn copies_done(&self) -> u32 {
        self.copies_done
    }
}

impl AttackInjector for DmaExfilAttack {
    fn name(&self) -> &'static str {
        "dma-exfil"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::DmaExfil
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![
            DetectionCapability::BusPolicing,
            DetectionCapability::MemoryGuard,
            DetectionCapability::NetworkSignature,
        ]
    }

    fn steps(&self) -> u32 {
        2
    }

    fn inject_step(
        &mut self,
        step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        let soc = &mut *targets.soc;
        if step == 0 {
            soc.dma.program(DmaDescriptor {
                src: self.secret_addr,
                dst: self.staging_addr,
                len: self.len,
            });
            let outcome = soc.dma.step(now, &mut soc.bus, &mut soc.mem);
            let achieved = matches!(outcome, Some(cres_soc::periph::dma::DmaOutcome::Done));
            if achieved {
                self.copies_done += 1;
            }
            AttackStepResult {
                description: format!(
                    "DMA copy {} -> {} ({} bytes): {:?}",
                    self.secret_addr, self.staging_addr, self.len, outcome
                ),
                achieved,
                effects: vec![],
            }
        } else {
            let sent = soc.nic.send(Packet {
                src: 1,
                dst: 0x6666,
                len: self.len as u32,
                kind: PacketKind::Exfil,
                at: now,
            });
            AttackStepResult {
                description: format!(
                    "exfil of staged secret over NIC: {}",
                    if sent { "sent" } else { "blocked" }
                ),
                achieved: sent && self.copies_done > 0,
                effects: vec![],
            }
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// External debug-port intrusion scanning memory.
#[derive(Debug, Clone)]
pub struct DebugPortAttack {
    scan_addrs: Vec<Addr>,
    times: Vec<SimTime>,
}

impl DebugPortAttack {
    /// Creates a debug intrusion scanning the given addresses.
    pub fn new(scan_addrs: Vec<Addr>) -> Self {
        assert!(!scan_addrs.is_empty());
        DebugPortAttack {
            scan_addrs,
            times: Vec::new(),
        }
    }
}

impl AttackInjector for DebugPortAttack {
    fn name(&self) -> &'static str {
        "debug-port"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::DebugIntrusion
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![DetectionCapability::BusPolicing]
    }

    fn steps(&self) -> u32 {
        self.scan_addrs.len() as u32
    }

    fn inject_step(
        &mut self,
        step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        let addr = self.scan_addrs[step as usize % self.scan_addrs.len()];
        let soc = &mut *targets.soc;
        let r = soc.bus.read(now, MasterId::DEBUG, addr, 16, &soc.mem);
        AttackStepResult {
            description: format!(
                "debug port read at {addr}: {}",
                if r.is_ok() { "ok" } else { "denied" }
            ),
            achieved: r.is_ok(),
            effects: vec![],
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Packet flood against the NIC.
#[derive(Debug, Clone)]
pub struct NetworkFloodAttack {
    packets_per_step: u32,
    steps: u32,
    times: Vec<SimTime>,
}

impl NetworkFloodAttack {
    /// Creates a flood delivering `packets_per_step` per step for `steps`.
    pub fn new(packets_per_step: u32, steps: u32) -> Self {
        NetworkFloodAttack {
            packets_per_step,
            steps,
            times: Vec::new(),
        }
    }
}

impl AttackInjector for NetworkFloodAttack {
    fn name(&self) -> &'static str {
        "network-flood"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::NetworkFlood
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![DetectionCapability::NetworkRate]
    }

    fn steps(&self) -> u32 {
        self.steps
    }

    fn inject_step(
        &mut self,
        _step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        let mut accepted = 0u32;
        for i in 0..self.packets_per_step {
            if targets.soc.nic.deliver(Packet {
                src: 0xDEAD,
                dst: 1,
                len: 64,
                kind: PacketKind::Command,
                at: now + cres_sim::SimDuration::cycles(u64::from(i)),
            }) {
                accepted += 1;
            }
        }
        AttackStepResult {
            description: format!(
                "flooded {} packets ({accepted} accepted)",
                self.packets_per_step
            ),
            achieved: accepted > 0,
            effects: vec![],
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Exploit-signature (malformed) traffic.
#[derive(Debug, Clone)]
pub struct MalformedTrafficAttack {
    count_per_step: u32,
    steps: u32,
    times: Vec<SimTime>,
}

impl MalformedTrafficAttack {
    /// Creates the attack sending `count_per_step` malformed packets per
    /// step.
    pub fn new(count_per_step: u32, steps: u32) -> Self {
        MalformedTrafficAttack {
            count_per_step,
            steps,
            times: Vec::new(),
        }
    }
}

impl AttackInjector for MalformedTrafficAttack {
    fn name(&self) -> &'static str {
        "exploit-traffic"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::ExploitTraffic
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![DetectionCapability::NetworkSignature]
    }

    fn steps(&self) -> u32 {
        self.steps
    }

    fn inject_step(
        &mut self,
        _step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        let mut any = false;
        for _ in 0..self.count_per_step {
            any |= targets.soc.nic.deliver(Packet {
                src: 0xBAD,
                dst: 1,
                len: 999,
                kind: PacketKind::Malformed,
                at: now,
            });
        }
        AttackStepResult {
            description: format!("{} malformed packets delivered", self.count_per_step),
            achieved: any,
            effects: vec![],
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Bulk exfiltration over the NIC from a compromised task.
#[derive(Debug, Clone)]
pub struct ExfilAttack {
    bytes_per_step: u32,
    steps: u32,
    times: Vec<SimTime>,
    bytes_exfiltrated: u64,
}

impl ExfilAttack {
    /// Creates the attack exfiltrating `bytes_per_step` per step.
    pub fn new(bytes_per_step: u32, steps: u32) -> Self {
        ExfilAttack {
            bytes_per_step,
            steps,
            times: Vec::new(),
            bytes_exfiltrated: 0,
        }
    }

    /// Bytes that actually left the device (attacker win metric).
    pub fn bytes_exfiltrated(&self) -> u64 {
        self.bytes_exfiltrated
    }
}

impl AttackInjector for ExfilAttack {
    fn name(&self) -> &'static str {
        "exfiltration"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::Exfiltration
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![DetectionCapability::NetworkSignature]
    }

    fn steps(&self) -> u32 {
        self.steps
    }

    fn inject_step(
        &mut self,
        _step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        let sent = targets.soc.nic.send(Packet {
            src: 1,
            dst: 0x6666,
            len: self.bytes_per_step,
            kind: PacketKind::Exfil,
            at: now,
        });
        if sent {
            self.bytes_exfiltrated += u64::from(self.bytes_per_step);
        }
        AttackStepResult {
            description: format!(
                "exfil burst {} bytes: {}",
                self.bytes_per_step,
                if sent {
                    "sent"
                } else {
                    "blocked by quarantine"
                }
            ),
            achieved: sent,
            effects: vec![],
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Sensor false-data injection.
#[derive(Debug, Clone)]
pub struct SensorSpoofAttack {
    sensor_idx: usize,
    mode: SensorSpoof,
    times: Vec<SimTime>,
}

impl SensorSpoofAttack {
    /// Creates a spoof of sensor `sensor_idx` using `mode`.
    pub fn new(sensor_idx: usize, mode: SensorSpoof) -> Self {
        SensorSpoofAttack {
            sensor_idx,
            mode,
            times: Vec::new(),
        }
    }
}

impl AttackInjector for SensorSpoofAttack {
    fn name(&self) -> &'static str {
        "sensor-spoof"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::SensorSpoof
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![DetectionCapability::SensorPlausibility]
    }

    fn steps(&self) -> u32 {
        1
    }

    fn inject_step(
        &mut self,
        _step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        match targets.soc.sensors.get_mut(self.sensor_idx) {
            Some(sensor) => {
                sensor.spoof(self.mode);
                AttackStepResult {
                    description: format!("sensor {} spoofed: {:?}", self.sensor_idx, self.mode),
                    achieved: true,
                    effects: vec![],
                }
            }
            None => AttackStepResult {
                description: format!("no sensor {}", self.sensor_idx),
                achieved: false,
                effects: vec![],
            },
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Voltage/clock/thermal fault injection.
#[derive(Debug, Clone)]
pub struct FaultInjectionAttack {
    tamper: EnvTamper,
    times: Vec<SimTime>,
}

impl FaultInjectionAttack {
    /// Creates the attack applying `tamper`.
    pub fn new(tamper: EnvTamper) -> Self {
        FaultInjectionAttack {
            tamper,
            times: Vec::new(),
        }
    }
}

impl AttackInjector for FaultInjectionAttack {
    fn name(&self) -> &'static str {
        "fault-injection"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::FaultInjection
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![DetectionCapability::Environmental]
    }

    fn steps(&self) -> u32 {
        1
    }

    fn inject_step(
        &mut self,
        _step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        targets.soc.env.tamper(self.tamper);
        AttackStepResult {
            description: format!("environment tampered: {:?}", self.tamper),
            achieved: true,
            effects: vec![],
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Anti-forensics: wipes the UART console log and the app-log region.
#[derive(Debug, Clone)]
pub struct LogWipeAttack {
    master: MasterId,
    times: Vec<SimTime>,
}

impl LogWipeAttack {
    /// Creates a log wipe performed by `master` (a compromised app core).
    pub fn new(master: MasterId) -> Self {
        LogWipeAttack {
            master,
            times: Vec::new(),
        }
    }
}

impl AttackInjector for LogWipeAttack {
    fn name(&self) -> &'static str {
        "log-wipe"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::LogWipe
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![DetectionCapability::MemoryGuard]
    }

    fn steps(&self) -> u32 {
        1
    }

    fn inject_step(
        &mut self,
        _step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        let soc = &mut *targets.soc;
        soc.uart.wipe();
        let wiped_region = if let Some(region) = soc.mem.region_by_name("app_log") {
            let base = region.range().start;
            let len = region.range().len.min(256);
            let zeros = vec![0u8; len as usize];
            soc.bus
                .write(now, self.master, base, &zeros, &mut soc.mem)
                .is_ok()
        } else {
            false
        };
        AttackStepResult {
            description: format!(
                "console log wiped; app_log region {}",
                if wiped_region {
                    "zeroed"
                } else {
                    "write denied"
                }
            ),
            achieved: true,
            effects: vec![],
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Behavioural compromise: a task starts issuing off-profile syscalls.
#[derive(Debug, Clone)]
pub struct SyscallAnomalyAttack {
    victim: TaskId,
    sequence: Vec<Syscall>,
    steps: u32,
    times: Vec<SimTime>,
}

impl SyscallAnomalyAttack {
    /// Creates the attack making `victim` issue `sequence` each step.
    pub fn new(victim: TaskId, sequence: Vec<Syscall>, steps: u32) -> Self {
        SyscallAnomalyAttack {
            victim,
            sequence,
            steps,
            times: Vec::new(),
        }
    }
}

impl AttackInjector for SyscallAnomalyAttack {
    fn name(&self) -> &'static str {
        "syscall-anomaly"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::SyscallAnomaly
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![DetectionCapability::SyscallSequence]
    }

    fn steps(&self) -> u32 {
        self.steps
    }

    fn inject_step(
        &mut self,
        _step: u32,
        now: SimTime,
        _targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        AttackStepResult {
            description: format!(
                "{} issued off-profile syscalls {:?}",
                self.victim, self.sequence
            ),
            achieved: true,
            effects: vec![AttackEffect::SyscallsEmitted(
                self.victim,
                self.sequence.clone(),
            )],
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

/// Crashes the firmware: halts every application core (a wild pointer
/// deref / lockup), leaving the watchdog as the only witness. This is the
/// one attack class the passive baseline *can* detect.
#[derive(Debug, Clone)]
pub struct SystemHangAttack {
    times: Vec<SimTime>,
}

impl SystemHangAttack {
    /// Creates the attack.
    pub fn new() -> Self {
        SystemHangAttack { times: Vec::new() }
    }
}

impl Default for SystemHangAttack {
    fn default() -> Self {
        Self::new()
    }
}

impl AttackInjector for SystemHangAttack {
    fn name(&self) -> &'static str {
        "system-hang"
    }

    fn kind(&self) -> AttackKind {
        AttackKind::SystemHang
    }

    fn detectable_by(&self) -> Vec<DetectionCapability> {
        vec![DetectionCapability::WatchdogLiveness]
    }

    fn steps(&self) -> u32 {
        1
    }

    fn inject_step(
        &mut self,
        _step: u32,
        now: SimTime,
        targets: &mut AttackTargets<'_>,
    ) -> AttackStepResult {
        self.times.push(now);
        for core in &mut targets.soc.cores {
            core.halt();
        }
        AttackStepResult {
            description: "firmware crashed: all application cores halted".into(),
            achieved: true,
            effects: vec![],
        }
    }

    fn injection_times(&self) -> &[SimTime] {
        &self.times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_soc::periph::Sensor;
    use cres_soc::soc::{layout, SocBuilder};
    use cres_soc::task::{control_loop_program, Criticality, Task};
    use cres_soc::Soc;

    fn soc() -> Soc {
        let mut soc = SocBuilder::with_standard_layout(11)
            .sensor(Sensor::new("s", 50.0, 0.1, 1000, 0.01))
            .build();
        soc.add_task(
            Task::new(
                TaskId(1),
                "victim",
                control_loop_program(layout::FLASH_A.0, layout::SRAM.0, layout::PERIPH.0),
                Criticality::Critical,
            ),
            0,
        );
        soc
    }

    fn run_all(attack: &mut dyn AttackInjector, soc: &mut Soc) -> Vec<AttackStepResult> {
        let mut out = Vec::new();
        for step in 0..attack.steps() {
            let mut targets = AttackTargets { soc, slots: None };
            out.push(attack.inject_step(
                step,
                SimTime::at_cycle(u64::from(step) * 100),
                &mut targets,
            ));
        }
        out
    }

    #[test]
    fn code_injection_hijacks_task() {
        let mut s = soc();
        let mut a = CodeInjectionAttack::new(TaskId(1), BlockId(3), 2);
        let results = run_all(&mut a, &mut s);
        assert!(results.iter().all(|r| r.achieved));
        assert_eq!(a.injection_times().len(), 2);
        // the hijack is armed: the next step takes the illegal edge
        let out = s.step_task(TaskId(1), SimTime::at_cycle(500)).unwrap();
        assert_eq!(out.edge.1, BlockId(3));
    }

    #[test]
    fn code_injection_on_missing_task_fails() {
        let mut s = soc();
        let mut a = CodeInjectionAttack::new(TaskId(42), BlockId(3), 1);
        let results = run_all(&mut a, &mut s);
        assert!(!results[0].achieved);
    }

    #[test]
    fn memory_probe_respects_isolation() {
        let mut s = soc();
        let ssm_region = s.mem.region_by_name("ssm_private").unwrap().id();
        s.mem.revoke(MasterId::CPU1, ssm_region);
        let mut a = MemoryProbeAttack::new(MasterId::CPU1, vec![layout::SSM_PRIVATE.0]);
        let results = run_all(&mut a, &mut s);
        assert!(!results[0].achieved);
        assert_eq!(a.secrets_read(), 0);
        // but an unprotected region is readable
        let mut a2 = MemoryProbeAttack::new(MasterId::CPU1, vec![layout::SRAM.0]);
        let results = run_all(&mut a2, &mut s);
        assert!(results[0].achieved);
        assert_eq!(a2.secrets_read(), 1);
    }

    #[test]
    fn firmware_tamper_leaves_bus_trace() {
        let mut s = soc();
        let before = s.bus.total_transactions();
        let mut a = FirmwareTamperAttack::new(MasterId::CPU0, layout::FLASH_A.0.offset(0x100));
        run_all(&mut a, &mut s);
        assert!(s.bus.total_transactions() > before);
    }

    #[test]
    fn downgrade_needs_slot_access() {
        let mut s = soc();
        let mut a = DowngradeAttack::new(vec![1, 2, 3]);
        let mut targets = AttackTargets {
            soc: &mut s,
            slots: None,
        };
        assert!(!a.inject_step(0, SimTime::ZERO, &mut targets).achieved);
        let mut slots = cres_boot::SlotStore::new(vec![9, 9, 9]);
        let mut targets = AttackTargets {
            soc: &mut s,
            slots: Some(&mut slots),
        };
        assert!(a.inject_step(0, SimTime::ZERO, &mut targets).achieved);
        assert_eq!(slots.active_bytes(), &[1, 2, 3]);
    }

    #[test]
    fn flood_fills_rx_log() {
        let mut s = soc();
        let mut a = NetworkFloodAttack::new(200, 2);
        let results = run_all(&mut a, &mut s);
        assert!(results.iter().all(|r| r.achieved));
        assert_eq!(s.nic.rx_log().len(), 400);
    }

    #[test]
    fn exfil_blocked_by_quarantine() {
        let mut s = soc();
        let mut a = ExfilAttack::new(4096, 3);
        let mut targets = AttackTargets {
            soc: &mut s,
            slots: None,
        };
        assert!(a.inject_step(0, SimTime::ZERO, &mut targets).achieved);
        s.nic.quarantine();
        let mut targets = AttackTargets {
            soc: &mut s,
            slots: None,
        };
        assert!(
            !a.inject_step(1, SimTime::at_cycle(1), &mut targets)
                .achieved
        );
        assert_eq!(a.bytes_exfiltrated(), 4096);
    }

    #[test]
    fn sensor_spoof_and_fault_injection_flip_state() {
        let mut s = soc();
        let mut spoof = SensorSpoofAttack::new(0, SensorSpoof::Fixed(99.0));
        run_all(&mut spoof, &mut s);
        assert!(s.sensors[0].is_spoofed());
        let mut fault = FaultInjectionAttack::new(EnvTamper::VoltageGlitch(1.0));
        run_all(&mut fault, &mut s);
        assert!(s.env.is_tampered());
    }

    #[test]
    fn log_wipe_clears_console() {
        let mut s = soc();
        s.uart.write_line("incident evidence line");
        let mut a = LogWipeAttack::new(MasterId::CPU0);
        run_all(&mut a, &mut s);
        assert!(s.uart.lines().is_empty());
    }

    #[test]
    fn syscall_anomaly_routes_effects() {
        let mut s = soc();
        let mut a = SyscallAnomalyAttack::new(
            TaskId(1),
            vec![Syscall::PrivEscalate, Syscall::FirmwareWrite],
            2,
        );
        let results = run_all(&mut a, &mut s);
        assert_eq!(results.len(), 2);
        match &results[0].effects[0] {
            AttackEffect::SyscallsEmitted(task, calls) => {
                assert_eq!(*task, TaskId(1));
                assert_eq!(calls.len(), 2);
            }
        }
    }

    #[test]
    fn dma_exfil_two_phases() {
        let mut s = soc();
        // allow DMA everything (default grants) — copy succeeds
        let mut a = DmaExfilAttack::new(layout::TEE_SECURE.0, layout::SRAM.0.offset(0x2000), 32);
        let results = run_all(&mut a, &mut s);
        assert!(results[0].achieved, "{}", results[0].description);
        assert!(results[1].achieved);
        assert_eq!(a.copies_done(), 1);
        // with DMA locked out of tee_secure, theft fails
        let mut s2 = soc();
        let tee_region = s2.mem.region_by_name("tee_secure").unwrap().id();
        s2.mem.revoke(MasterId::DMA, tee_region);
        let mut a2 = DmaExfilAttack::new(layout::TEE_SECURE.0, layout::SRAM.0.offset(0x2000), 32);
        let results = run_all(&mut a2, &mut s2);
        assert!(!results[0].achieved);
    }

    #[test]
    fn debug_port_scan() {
        let mut s = soc();
        let mut a = DebugPortAttack::new(vec![layout::SRAM.0, layout::TEE_SECURE.0]);
        let results = run_all(&mut a, &mut s);
        assert_eq!(results.len(), 2);
        // leaves DEBUG-master records for the bus monitor
        assert!(s.bus.stats(MasterId::DEBUG).granted + s.bus.stats(MasterId::DEBUG).denied > 0);
    }

    #[test]
    fn every_attack_declares_ground_truth() {
        let attacks: Vec<Box<dyn AttackInjector>> = vec![
            Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(3), 1)),
            Box::new(MemoryProbeAttack::new(MasterId::CPU1, vec![Addr(0)])),
            Box::new(FirmwareTamperAttack::new(MasterId::CPU0, Addr(0))),
            Box::new(DowngradeAttack::new(vec![])),
            Box::new(DmaExfilAttack::new(Addr(0), Addr(16), 4)),
            Box::new(DebugPortAttack::new(vec![Addr(0)])),
            Box::new(NetworkFloodAttack::new(10, 1)),
            Box::new(MalformedTrafficAttack::new(3, 1)),
            Box::new(ExfilAttack::new(100, 1)),
            Box::new(SensorSpoofAttack::new(0, SensorSpoof::Fixed(0.0))),
            Box::new(FaultInjectionAttack::new(EnvTamper::ClockSkew(250.0))),
            Box::new(LogWipeAttack::new(MasterId::CPU0)),
            Box::new(SyscallAnomalyAttack::new(
                TaskId(1),
                vec![Syscall::PrivEscalate],
                1,
            )),
        ];
        for a in &attacks {
            assert!(
                !a.detectable_by().is_empty(),
                "{} lacks ground truth",
                a.name()
            );
            assert!(a.steps() > 0, "{} has no steps", a.name());
        }
        // names unique
        let names: std::collections::HashSet<_> = attacks.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), attacks.len());
    }
}
