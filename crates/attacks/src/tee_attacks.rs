//! TEE-specific attacks (experiment E7's instruments).
//!
//! These operate on a [`cres_tee::Tee`] rather than the SoC bus, because
//! the vulnerabilities they model live in the TEE's physical deployment:
//!
//! * [`shared_cache_key_extraction`] — Spectre/Meltdown-class leakage of a
//!   stored key across the shared microarchitecture; succeeds only against
//!   [`TeeDeployment::SharedResources`](cres_tee::TeeDeployment);
//! * [`ta_downgrade`] — reinstalling an old, genuinely signed trusted
//!   application (Project Zero's TrustZone downgrade \[32\]); succeeds only
//!   when the TEE lacks rollback protection.

use cres_tee::{TaManifest, Tee, TeeError};

/// Outcome of a TEE attack attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeAttackOutcome {
    /// The attacker obtained the target (key bytes or old-TA install).
    Succeeded(String),
    /// The deployment/protection blocked the attack.
    Blocked(String),
}

impl TeeAttackOutcome {
    /// True when the attack succeeded.
    pub fn succeeded(&self) -> bool {
        matches!(self, TeeAttackOutcome::Succeeded(_))
    }
}

/// Attempts to extract the named key through a microarchitectural side
/// channel. Models the §IV argument: "both secure and non-secure processes
/// share the same physical memory resource".
pub fn shared_cache_key_extraction(tee: &mut Tee, key_name: &str) -> TeeAttackOutcome {
    match tee.side_channel_extract(key_name) {
        Some(bytes) => TeeAttackOutcome::Succeeded(format!(
            "extracted {} bytes of key {key_name:?} via cache timing",
            bytes.len()
        )),
        None => TeeAttackOutcome::Blocked(
            "no shared microarchitecture between attacker and secure world".into(),
        ),
    }
}

/// Attempts to reinstall an old, genuinely signed TA version.
pub fn ta_downgrade(tee: &mut Tee, old_manifest: TaManifest) -> TeeAttackOutcome {
    let version = old_manifest.version;
    let name = old_manifest.name.clone();
    match tee.install_ta(old_manifest) {
        Ok(()) => TeeAttackOutcome::Succeeded(format!(
            "downgraded TA {name:?} to vulnerable version {version}"
        )),
        Err(TeeError::Downgrade { installed, offered }) => {
            TeeAttackOutcome::Blocked(format!("rollback protection held: {offered} < {installed}"))
        }
        Err(e) => TeeAttackOutcome::Blocked(format!("install rejected: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cres_crypto::drbg::HmacDrbg;
    use cres_crypto::rsa::generate_keypair;
    use cres_tee::{TaSigner, TeeDeployment};

    fn setup(deployment: TeeDeployment, rollback: bool) -> (Tee, TaSigner) {
        let mut d = HmacDrbg::new(b"tee-attack-test", b"");
        let kp = generate_keypair(512, &mut d).unwrap();
        let signer = TaSigner::new(&kp);
        let mut tee = Tee::new(deployment, kp.public.clone(), rollback);
        tee.install_ta(signer.sign("keystore", 3, b"v3")).unwrap();
        let s = tee.open_session("keystore").unwrap();
        tee.store_key(s, "device-root", b"super secret").unwrap();
        (tee, signer)
    }

    #[test]
    fn extraction_succeeds_only_when_shared() {
        let (mut shared, _) = setup(TeeDeployment::SharedResources, true);
        assert!(shared_cache_key_extraction(&mut shared, "device-root").succeeded());

        let (mut isolated, _) = setup(TeeDeployment::IsolatedCoprocessor, true);
        assert!(!shared_cache_key_extraction(&mut isolated, "device-root").succeeded());
    }

    #[test]
    fn extraction_of_unknown_key_fails_quietly() {
        let (mut shared, _) = setup(TeeDeployment::SharedResources, true);
        assert!(!shared_cache_key_extraction(&mut shared, "no-such-key").succeeded());
    }

    #[test]
    fn downgrade_blocked_by_rollback_protection() {
        let (mut tee, signer) = setup(TeeDeployment::SharedResources, true);
        let outcome = ta_downgrade(&mut tee, signer.sign("keystore", 1, b"v1-vulnerable"));
        assert!(!outcome.succeeded());
        assert_eq!(tee.installed_version("keystore"), Some(3));
    }

    #[test]
    fn downgrade_succeeds_without_rollback_protection() {
        let (mut tee, signer) = setup(TeeDeployment::SharedResources, false);
        let outcome = ta_downgrade(&mut tee, signer.sign("keystore", 1, b"v1-vulnerable"));
        assert!(outcome.succeeded());
        assert_eq!(tee.installed_version("keystore"), Some(1));
    }

    #[test]
    fn forged_downgrade_always_blocked() {
        let (mut tee, _) = setup(TeeDeployment::SharedResources, false);
        let mut d = HmacDrbg::new(b"evil", b"");
        let evil = generate_keypair(512, &mut d).unwrap();
        let forged = TaSigner::new(&evil).sign("keystore", 1, b"backdoor");
        assert!(!ta_downgrade(&mut tee, forged).succeeded());
    }
}
