#![deny(missing_docs)]

//! The attack injector library.
//!
//! Every §IV attack class the paper discusses, implemented as a
//! behaviour-equivalent injector against the simulated SoC, each carrying
//! **ground truth** (what happened, when, and which detection capability
//! *should* see it) so experiments can score detection rate and latency
//! mechanically.
//!
//! | Injector | Real-world analogue (paper citation) |
//! |---|---|
//! | [`CodeInjectionAttack`] | ROP/code injection on the rich OS |
//! | [`MemoryProbeAttack`] | Meltdown-class memory scanning \[17\] |
//! | [`FirmwareTamperAttack`] | persistent implant in flash \[15\] |
//! | [`DowngradeAttack`] | 3DS keyshuffling / TrustZone downgrade \[15\]\[16\] |
//! | [`DmaExfilAttack`] | DMA confused-deputy exfiltration |
//! | [`DebugPortAttack`] | JTAG/SWD intrusion |
//! | [`NetworkFloodAttack`] | M2M DoS flood |
//! | [`MalformedTrafficAttack`] | exploit-kit traffic |
//! | [`ExfilAttack`] | bulk data theft over the NIC |
//! | [`SensorSpoofAttack`] | false data injection on sensing |
//! | [`FaultInjectionAttack`] | voltage/clock glitching |
//! | [`LogWipeAttack`] | anti-forensics (the E6 antagonist) |
//! | [`SyscallAnomalyAttack`] | living-off-the-land behaviour change |
//! | [`SystemHangAttack`] | firmware crash/lockup (the watchdog's domain) |
//! | [`tee_attacks`] | Spectre/Meltdown-class TEE leakage + TA downgrade \[16\]\[32\] |

pub mod catalog;
pub mod inject;
pub mod library;
pub mod tee_attacks;

pub use catalog::UnknownAttack;
pub use inject::{AttackEffect, AttackInjector, AttackKind, AttackStepResult, AttackTargets};
pub use library::{
    CodeInjectionAttack, DebugPortAttack, DmaExfilAttack, DowngradeAttack, ExfilAttack,
    FaultInjectionAttack, FirmwareTamperAttack, LogWipeAttack, MalformedTrafficAttack,
    MemoryProbeAttack, NetworkFloodAttack, SensorSpoofAttack, SyscallAnomalyAttack,
    SystemHangAttack,
};
