//! `cres-demo` — run a CRES scenario from the command line.
//!
//! ```text
//! cres-demo [--profile cres|passive|tee-shared] [--seed N]...
//!           [--duration CYCLES] [--attack NAME]... [--jobs N]
//!           [--report] [--trace] [--trace-out FILE] [--log-out FILE]
//!           [--metrics-out FILE]
//! ```
//!
//! `--seed` is repeatable: each seed becomes one run, and runs fan out
//! across `--jobs` worker threads (default: `CRES_JOBS` or all cores)
//! through the campaign engine. Results are deterministic and printed in
//! seed order regardless of the thread count.
//!
//! Attack names: code-injection, memory-probe, firmware-tamper, dma-exfil,
//! debug-port, network-flood, exploit-traffic, exfiltration, sensor-spoof,
//! fault-injection, log-wipe, syscall-anomaly, system-hang.

use cres::attacks::catalog;
use cres::obs::{chrome_trace, device_records, prometheus, write_jsonl, ObsCapture};
use cres::platform::campaign::{jobs_from_env, Campaign, ScenarioSpec};
use cres::platform::runner::ScenarioRunner;
use cres::platform::{PlatformConfig, PlatformProfile};
use cres::sim::{SimDuration, SimTime};
use std::process::ExitCode;

fn parse_profile(s: &str) -> Option<PlatformProfile> {
    Some(match s {
        "cres" | "cyber-resilient" => PlatformProfile::CyberResilient,
        "passive" | "baseline" => PlatformProfile::PassiveTrust,
        "tee-shared" | "shared" => PlatformProfile::TeeShared,
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cres-demo [--profile cres|passive|tee-shared] [--seed N]...\n\
         \x20                [--duration CYCLES] [--attack NAME]... [--jobs N]\n\
         \x20                [--report] [--trace] [--trace-out FILE] [--log-out FILE]\n\
         \x20                [--metrics-out FILE]\n\
         run `cres-demo --help` for the attack list"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut profile = PlatformProfile::CyberResilient;
    let mut seeds: Vec<u64> = Vec::new();
    let mut duration = 1_000_000u64;
    let mut attacks: Vec<String> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut full_report = false;
    let mut trace_dump = false;
    let mut trace_out: Option<String> = None;
    let mut log_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!(
                    "cres-demo — drive the cyber-resilient embedded platform\n\n\
                     options:\n\
                     \x20 --profile cres|passive|tee-shared   topology (default cres)\n\
                     \x20 --seed N                            determinism seed, repeatable:\n\
                     \x20                                     one run per seed (default 42)\n\
                     \x20 --duration CYCLES                   run length (default 1000000)\n\
                     \x20 --attack NAME                       schedule an attack (repeatable)\n\
                     \x20 --jobs N                            worker threads for multi-seed runs\n\
                     \x20                                     (default: CRES_JOBS or all cores)\n\
                     \x20 --report                            dump each report as JSON\n\
                     \x20 --trace                             print the telemetry stage table\n\
                     \x20                                     and the trace-ring tail\n\
                     \x20 --trace-out FILE                    write a Chrome trace_event file\n\
                     \x20                                     (open in chrome://tracing / Perfetto)\n\
                     \x20 --log-out FILE                      write the structured JSONL event log\n\
                     \x20 --metrics-out FILE                  write a Prometheus text exposition\n\
                     \x20                                     (first seed's metrics registry)\n\n\
                     attacks: code-injection memory-probe firmware-tamper dma-exfil\n\
                     \x20        debug-port network-flood exploit-traffic exfiltration\n\
                     \x20        sensor-spoof fault-injection log-wipe syscall-anomaly system-hang"
                );
                return ExitCode::SUCCESS;
            }
            "--profile" => {
                i += 1;
                let Some(p) = args.get(i).and_then(|s| parse_profile(s)) else {
                    return usage();
                };
                profile = p;
            }
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                seeds.push(v);
            }
            "--duration" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                duration = v;
            }
            "--attack" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    return usage();
                };
                if !catalog::is_known(name) {
                    eprintln!("unknown attack {name:?}");
                    return usage();
                }
                attacks.push(name.clone());
            }
            "--jobs" => {
                i += 1;
                let Some(raw) = args.get(i) else {
                    eprintln!("error: --jobs requires a value");
                    return usage();
                };
                match raw.parse::<usize>() {
                    Ok(n) if n > 0 => jobs = Some(n),
                    Ok(_) => {
                        eprintln!("error: invalid --jobs {raw:?}: job count must be at least 1");
                        return ExitCode::from(2);
                    }
                    Err(_) => {
                        eprintln!("error: invalid --jobs {raw:?}: expected a positive integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--report" => full_report = true,
            "--trace" => trace_dump = true,
            "--trace-out" | "--log-out" | "--metrics-out" => {
                let flag = args[i].clone();
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("error: {flag} requires a file path");
                    return usage();
                };
                match flag.as_str() {
                    "--trace-out" => trace_out = Some(path.clone()),
                    "--log-out" => log_out = Some(path.clone()),
                    _ => metrics_out = Some(path.clone()),
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return usage();
            }
        }
        i += 1;
    }
    if seeds.is_empty() {
        seeds.push(42);
    }

    let mut spec = ScenarioSpec::quiet(SimDuration::cycles(duration));
    let n = attacks.len().max(1) as u64;
    for (k, name) in attacks.iter().enumerate() {
        let start = duration * (k as u64 + 1) / (n + 1);
        spec = spec.attack(
            name.clone(),
            SimTime::at_cycle(start),
            SimDuration::cycles(5_000),
        );
    }

    let mut campaign = Campaign::new(catalog::try_build);
    for &seed in &seeds {
        campaign.submit(
            format!("seed={seed}"),
            PlatformConfig::new(profile, seed),
            spec.clone(),
        );
    }
    let multi = seeds.len() > 1;
    // --jobs wins; otherwise CRES_JOBS (rejected loudly when malformed);
    // otherwise all cores.
    let effective_jobs = match jobs {
        Some(n) => n,
        None => match jobs_from_env() {
            Ok(Some(n)) => n,
            Ok(None) => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::from(2);
            }
        },
    };
    if full_report {
        // Reproducibility breadcrumb for archived reports; stderr so the
        // stdout JSON stream stays machine-parseable.
        eprintln!(
            "cres-demo: {} run(s) across {effective_jobs} worker thread(s)",
            seeds.len()
        );
    }
    let summary = match campaign.run_parallel(effective_jobs) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    for result in &summary.results {
        let report = &result.report;
        if multi {
            println!("-- {} --", result.label);
        }
        println!("{}", report.summary_row());
        for a in &report.attacks {
            println!(
                "  {:<18} detected={} latency={} wins={}/{}",
                a.name,
                a.detected(),
                a.detection_latency.map_or("—".into(), |l| format!("{l}cy")),
                a.steps_achieved,
                a.steps_executed
            );
        }
        if trace_dump {
            match &report.telemetry {
                Some(telemetry) => {
                    println!("telemetry: {}", telemetry.summary_line());
                    print!("{}", telemetry.stage_table());
                    println!(
                        "trace tail (newest {} spans, oldest first):",
                        telemetry.trace_tail.len()
                    );
                    for span in &telemetry.trace_tail {
                        println!(
                            "  @{:<10} {:<16} arg={:<6} {}cy",
                            span.at.cycle(),
                            span.stage.name(),
                            span.arg,
                            span.cycles
                        );
                    }
                }
                None => println!("telemetry: disabled for this run"),
            }
        }
        if full_report {
            println!("{}", report.to_json());
        }
    }
    if multi {
        summary.print_aggregate("cres-demo");
    }

    // Export plane: runs are deterministic, so re-executing each seed
    // through `run_keep` reproduces the campaign's reports bit-for-bit
    // while also handing back the platform (full trace ring + evidence)
    // the exporters need. Entirely post-hoc — the runs above are never
    // instrumented differently because an export was requested.
    if trace_out.is_some() || log_out.is_some() || metrics_out.is_some() {
        let mut captures = Vec::with_capacity(seeds.len());
        for (device, &seed) in seeds.iter().enumerate() {
            let scenario = spec
                .materialise(&catalog::try_build)
                .expect("attack names validated at parse time");
            let runner = ScenarioRunner::new(PlatformConfig::new(profile, seed));
            let (report, platform) = runner.run_keep(scenario);
            captures.push(ObsCapture::from_run(device as u32, report, &platform));
        }
        if let Some(path) = &trace_out {
            if let Err(code) = write_artifact(path, &chrome_trace(&captures)) {
                return code;
            }
        }
        if let Some(path) = &log_out {
            let mut records = Vec::new();
            for capture in &captures {
                records.extend(device_records(capture));
            }
            if let Err(code) = write_artifact(path, &write_jsonl(&records)) {
                return code;
            }
        }
        if let Some(path) = &metrics_out {
            let Some(telemetry) = captures.first().and_then(|c| c.report.telemetry.as_ref()) else {
                eprintln!("error: --metrics-out requires telemetry (enabled by default)");
                return ExitCode::from(2);
            };
            if let Err(code) = write_artifact(path, &prometheus(telemetry)) {
                return code;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Writes one export artifact; a bad path is an operator error, not a
/// panic: report it and exit 2.
fn write_artifact(path: &str, contents: &str) -> Result<(), ExitCode> {
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("error: cannot write {path:?}: {e}");
        ExitCode::from(2)
    })
}
