#![warn(missing_docs)]

//! # cres — a cyber-resilient embedded system platform
//!
//! Facade crate for the CRES workspace: a from-scratch Rust reproduction of
//! *"Establishing Cyber Resilience in Embedded Systems for Securing
//! Next-Generation Critical Infrastructure"* (Siddiqui, Hagan, Sezer —
//! IEEE SOCC 2019).
//!
//! The paper proposes three microarchitectural characteristics for cyber
//! resilient embedded systems; this workspace implements all three on a
//! simulated MPSoC, plus every substrate they need and the passive
//! baseline they are compared against:
//!
//! | Characteristic | Crate |
//! |---|---|
//! | Independent active runtime **System Security Manager** | [`ssm`] |
//! | **Active Runtime Resource Monitors** | [`monitor`] |
//! | **Active Response Manager** | [`response`] |
//!
//! Substrates: [`sim`] (deterministic DES kernel), [`crypto`] (from-scratch
//! SHA-2/HMAC/AES/RSA/Merkle), [`soc`] (MPSoC: bus, MPU, cores,
//! peripherals), [`boot`] (secure/measured boot + A/B update), [`tee`]
//! (trusted execution environment), [`policy`] (STRIDE threat modelling +
//! the paper's Table I), [`attacks`] (ground-truth attack injectors),
//! [`forensics`] (timeline reconstruction + breach reports),
//! [`platform`] (the assembled system + scenario runner) and [`fleet`]
//! (N devices behind a sharded runner and a streaming fleet SOC).
//!
//! # Example
//!
//! ```
//! use cres::platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
//! use cres::sim::SimDuration;
//!
//! let config = PlatformConfig::new(PlatformProfile::CyberResilient, 7);
//! let report = ScenarioRunner::new(config).run(Scenario::quiet(SimDuration::cycles(150_000)));
//! assert!(report.boot_ok);
//! assert_eq!(report.total_incidents, 0);
//! ```

pub use cres_attacks as attacks;
pub use cres_boot as boot;
pub use cres_crypto as crypto;
pub use cres_fleet as fleet;
pub use cres_forensics as forensics;
pub use cres_monitor as monitor;
pub use cres_obs as obs;
pub use cres_platform as platform;
pub use cres_policy as policy;
pub use cres_response as response;
pub use cres_scenario as scenario;
pub use cres_sim as sim;
pub use cres_soc as soc;
pub use cres_ssm as ssm;
pub use cres_tee as tee;
