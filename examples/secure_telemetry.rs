//! Authenticated M2M telemetry under a man-in-the-middle.
//!
//! A substation controller streams grid-frequency telemetry to a control
//! centre over a hostile network segment. The channel key lives in the TEE
//! keystore — neither endpoint's rich-OS code ever sees it. The MITM
//! tampers, forges and replays; every manipulation is rejected, and the
//! rejection counters are exactly the signal a network monitor escalates.
//!
//! Run: `cargo run --release --example secure_telemetry`

use cres::platform::comms::{mitm_forge, mitm_tamper, SecureChannel};
use cres::platform::{Platform, PlatformConfig, PlatformProfile};
use cres::sim::SimTime;

fn main() {
    println!("=== authenticated telemetry vs man-in-the-middle ===\n");
    let mut platform = Platform::new(PlatformConfig::new(PlatformProfile::CyberResilient, 555));

    // Provision the channel key through the keystore TA.
    let session = platform.tee.open_session("keystore").unwrap();
    platform
        .tee
        .store_key(session, "m2m-telemetry", b"per-link channel key")
        .unwrap();
    let mut device = SecureChannel::new(session, "m2m-telemetry");
    let mut control_centre = SecureChannel::new(session, "m2m-telemetry");

    // Honest traffic.
    println!("-- honest link --");
    for step in 0..5u64 {
        let reading = platform
            .soc
            .read_sensor(0, SimTime::at_cycle(step * 10_000));
        let payload = format!("grid_freq={reading:.4}");
        let msg = device.send(&platform.tee, payload.as_bytes()).unwrap();
        let received = control_centre.receive(&platform.tee, &msg).unwrap();
        println!("  seq {}: {}", msg.seq, String::from_utf8_lossy(&received));
    }

    // The attacker on the wire.
    println!("\n-- man-in-the-middle --");
    let genuine = device.send(&platform.tee, b"grid_freq=50.0021").unwrap();

    let tampered = mitm_tamper(&genuine, b"grid_freq=61.5000");
    println!(
        "  tampered reading    : {:?}",
        control_centre
            .receive(&platform.tee, &tampered)
            .unwrap_err()
    );

    let forged = mitm_forge(genuine.seq + 1, b"cmd=OPEN_BREAKER", b"guessed key");
    println!(
        "  forged command      : {:?}",
        control_centre.receive(&platform.tee, &forged).unwrap_err()
    );

    // genuine message passes, then its replay is refused
    control_centre.receive(&platform.tee, &genuine).unwrap();
    println!(
        "  replayed message    : {:?}",
        control_centre.receive(&platform.tee, &genuine).unwrap_err()
    );

    let (accepted, bad_tag, replays) = control_centre.stats();
    println!("\ncontrol-centre stats: {accepted} accepted, {bad_tag} bad tags, {replays} replays");
    println!(
        "\nEvery manipulation was rejected without the endpoints ever holding\n\
         the key — it stayed in the TEE keystore, where a key-zeroisation\n\
         countermeasure can destroy it the moment the SSM declares compromise."
    );
}
