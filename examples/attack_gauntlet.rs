//! The full attack gauntlet against all three platform topologies: a
//! compact reproduction of the paper's core comparison in one table.
//!
//! Run: `cargo run --release --example attack_gauntlet`

use cres::attacks::{
    AttackInjector, CodeInjectionAttack, DebugPortAttack, ExfilAttack, FaultInjectionAttack,
    FirmwareTamperAttack, MalformedTrafficAttack, MemoryProbeAttack, NetworkFloodAttack,
    SensorSpoofAttack, SyscallAnomalyAttack,
};
use cres::platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres::sim::{SimDuration, SimTime};
use cres::soc::addr::MasterId;
use cres::soc::periph::{EnvTamper, SensorSpoof};
use cres::soc::soc::layout;
use cres::soc::task::{BlockId, Syscall, TaskId};

fn gauntlet() -> Vec<(&'static str, Box<dyn AttackInjector>)> {
    vec![
        (
            "code-injection",
            Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(0), 3)) as Box<dyn AttackInjector>,
        ),
        (
            "memory-probe",
            Box::new(MemoryProbeAttack::new(
                MasterId::CPU1,
                vec![layout::SSM_PRIVATE.0, layout::TEE_SECURE.0],
            )),
        ),
        (
            "firmware-tamper",
            Box::new(FirmwareTamperAttack::new(
                MasterId::CPU0,
                layout::FLASH_A.0.offset(0x800),
            )),
        ),
        (
            "debug-port",
            Box::new(DebugPortAttack::new(vec![
                layout::SRAM.0,
                layout::TEE_SECURE.0,
            ])),
        ),
        ("network-flood", Box::new(NetworkFloodAttack::new(300, 6))),
        (
            "exploit-traffic",
            Box::new(MalformedTrafficAttack::new(5, 3)),
        ),
        ("exfiltration", Box::new(ExfilAttack::new(4096, 4))),
        (
            "sensor-spoof",
            Box::new(SensorSpoofAttack::new(0, SensorSpoof::Fixed(61.0))),
        ),
        (
            "fault-injection",
            Box::new(FaultInjectionAttack::new(EnvTamper::VoltageGlitch(1.0))),
        ),
        (
            "syscall-anomaly",
            Box::new(SyscallAnomalyAttack::new(
                TaskId(1),
                vec![Syscall::PrivEscalate],
                2,
            )),
        ),
    ]
}

fn run_cell(profile: PlatformProfile, attack_idx: usize) -> &'static str {
    let injector = gauntlet().swap_remove(attack_idx).1;
    let scenario = Scenario::quiet(SimDuration::cycles(600_000)).attack(
        SimTime::at_cycle(250_000),
        SimDuration::cycles(4_000),
        injector,
    );
    let report = ScenarioRunner::new(PlatformConfig::new(profile, 808)).run(scenario);
    if report.attacks[0].detected() {
        "DETECTED"
    } else {
        "missed"
    }
}

fn main() {
    println!("=== attack gauntlet x platform topology ===\n");
    println!(
        "{:<18} {:<16} {:<16} {:<16}",
        "attack", "CyberResilient", "TeeShared", "PassiveTrust"
    );
    println!("{}", "-".repeat(68));
    let n = gauntlet().len();
    for i in 0..n {
        let name = gauntlet()[i].0;
        println!(
            "{:<18} {:<16} {:<16} {:<16}",
            name,
            run_cell(PlatformProfile::CyberResilient, i),
            run_cell(PlatformProfile::TeeShared, i),
            run_cell(PlatformProfile::PassiveTrust, i),
        );
    }
    println!("{}", "-".repeat(68));
    println!(
        "\nTeeShared detects like CRES (same monitors) — its weakness is the\n\
         shared-resource security subsystem (see experiment E7), not the\n\
         monitor set. PassiveTrust is blind to everything the watchdog\n\
         cannot see."
    );
}
