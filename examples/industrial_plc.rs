//! Industrial PLC firmware-supply-chain scenario: field update, downgrade
//! attempt and ransomware-style corruption with automatic recovery.
//!
//! Walks the full firmware lifecycle the paper's RECOVER function covers:
//! a legitimate v2 update rolls forward; an attacker's replay of the
//! genuinely-signed-but-vulnerable v1 is refused by the anti-rollback
//! counter; corruption of the active slot is caught by boot verification
//! and healed by the A/B fallback after the boot-attempt budget.
//!
//! Run: `cargo run --release --example industrial_plc`

use cres::boot::{FirmwareImage, UpdateError};
use cres::platform::{Platform, PlatformConfig, PlatformProfile};

fn active_version(p: &Platform) -> String {
    FirmwareImage::from_bytes(p.slots.active_bytes(), p.vendor_public.modulus_len())
        .ok()
        .and_then(|img| {
            img.verify(&p.vendor_public)
                .ok()
                .map(|_| img.header.version)
        })
        .map_or("UNBOOTABLE".into(), |v| format!("v{v}"))
}

fn main() {
    println!("=== industrial PLC firmware lifecycle ===\n");
    let mut p = Platform::new(PlatformConfig::new(PlatformProfile::CyberResilient, 77));
    println!(
        "factory state          : {} in slot {}",
        active_version(&p),
        p.slots.active()
    );

    // 1. Legitimate roll-forward update to v2.
    let v2 = p
        .signer
        .sign("app", 2, 2, b"PLC firmware v2 (CVE fixed)")
        .to_bytes();
    p.update.stage(&mut p.slots, v2);
    p.update
        .commit(&mut p.slots, p.chain.rom(), &p.vendor_public, &mut p.arb)
        .expect("v2 verifies");
    println!(
        "after OTA update       : {} in slot {}",
        active_version(&p),
        p.slots.active()
    );

    // 2. Downgrade attempt: the attacker owns the update channel and
    //    replays the old, genuinely signed v1.
    let v1_replay = p
        .signer
        .sign("app", 1, 1, b"PLC firmware v1 (vulnerable)")
        .to_bytes();
    p.update.stage(&mut p.slots, v1_replay);
    match p
        .update
        .commit(&mut p.slots, p.chain.rom(), &p.vendor_public, &mut p.arb)
    {
        Err(UpdateError::Verify(e)) => println!("downgrade replay       : REFUSED ({e})"),
        other => println!("downgrade replay       : unexpectedly {other:?}"),
    }
    println!("still running          : {}", active_version(&p));

    // 3. Ransomware corrupts the active slot in place.
    let active = p.slots.active();
    let mut bytes = p.slots.active_bytes().to_vec();
    for b in bytes.iter_mut().skip(100).take(64) {
        *b = 0x66;
    }
    p.slots.write_slot(active, bytes);
    println!("after corruption       : {}", active_version(&p));

    // 4. The boot-attempt budget triggers automatic rollback to slot A.
    let mut boots = 0;
    loop {
        boots += 1;
        let sig_len = p.vendor_public.modulus_len();
        let image_ok = FirmwareImage::from_bytes(p.slots.active_bytes(), sig_len)
            .ok()
            .is_some_and(|img| img.verify(&p.vendor_public).is_ok());
        if image_ok {
            p.update.record_boot_success();
            break;
        }
        match p.update.record_boot_failure(&mut p.slots) {
            Ok(rolled_back) => {
                println!(
                    "boot attempt {boots}         : verification FAILED{}",
                    if rolled_back { " -> auto-rollback" } else { "" }
                );
            }
            Err(e) => {
                println!("boot attempt {boots}         : {e}; invoking golden recovery");
                p.update.recover_golden(&mut p.slots);
            }
        }
        assert!(boots < 10, "recovery did not converge");
    }
    println!(
        "recovered              : {} in slot {}",
        active_version(&p),
        p.slots.active()
    );
    let (updates, rollbacks, golden) = p.update.counters();
    println!(
        "\nlifetime counters      : {updates} updates, {rollbacks} rollbacks, {golden} golden recoveries"
    );
    println!(
        "\nThe anti-rollback fuse blocked the signed-replay downgrade (the §IV\n\
         attack), and A/B redundancy turned a bricking corruption into a\n\
         bounded number of failed boots."
    );
}
