//! Smart-grid substation scenario: the paper's motivating critical
//! infrastructure deployment.
//!
//! A protection-relay controller is hit by a coordinated campaign — a
//! station-bus flood, then spoofing of the grid-frequency sensor that feeds
//! the breaker logic. The cyber-resilient platform rate-limits the flood,
//! distrusts the sensor, locks the breaker in a safe state and keeps the
//! relay loop serving throughout; the passive baseline never notices.
//!
//! Run: `cargo run --release --example smart_grid`

use cres::attacks::{NetworkFloodAttack, SensorSpoofAttack};
use cres::platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres::policy::{AssetInventory, ThreatModel};
use cres::sim::{SimDuration, SimTime};
use cres::soc::periph::SensorSpoof;

fn campaign(duration: u64) -> Scenario {
    Scenario::quiet(SimDuration::cycles(duration))
        .attack(
            SimTime::at_cycle(250_000),
            SimDuration::cycles(3_000),
            Box::new(NetworkFloodAttack::new(400, 12)),
        )
        .attack(
            SimTime::at_cycle(700_000),
            SimDuration::cycles(1_000),
            // the attacker reports 61.5 Hz on a 50 Hz grid to trip breakers
            Box::new(SensorSpoofAttack::new(0, SensorSpoof::Fixed(61.5))),
        )
}

fn main() {
    println!("=== smart-grid substation under attack ===\n");

    // IDENTIFY first (the paper's step 1): what does the STRIDE model say
    // this deployment needs?
    let inventory = AssetInventory::substation_example();
    let threats = ThreatModel::generate(&inventory);
    println!(
        "threat model: {} assets, {} threats; top risk:",
        inventory.assets().len(),
        threats.threats().len()
    );
    let top = threats.prioritized()[0];
    let asset = inventory.get(top.asset).unwrap();
    println!(
        "  {} against {:?} — likelihood {} x impact {} = score {} ({:?})\n",
        top.category,
        asset.name,
        top.likelihood,
        top.impact,
        top.score(),
        top.level()
    );

    let duration = 1_200_000;
    for profile in [
        PlatformProfile::CyberResilient,
        PlatformProfile::PassiveTrust,
    ] {
        let report =
            ScenarioRunner::new(PlatformConfig::new(profile, 2030)).run(campaign(duration));
        let quiet = ScenarioRunner::new(PlatformConfig::new(profile, 2030))
            .run(Scenario::quiet(SimDuration::cycles(duration)));
        println!("--- {profile} ---");
        println!("  flood detected        : {}", report.attacks[0].detected());
        println!("  sensor spoof detected : {}", report.attacks[1].detected());
        println!(
            "  relay throughput      : {:.1}% of attack-free",
            100.0 * report.critical_steps as f64 / quiet.critical_steps.max(1) as f64
        );
        println!("  reboots               : {}", report.reboots);
        println!(
            "  evidence              : {} records, chain {}",
            report.evidence_len,
            if report.evidence_chain_ok {
                "intact"
            } else {
                "BROKEN"
            }
        );
        println!("  final health          : {}\n", report.final_health);
    }
    println!(
        "The CRES platform detects both campaign stages, answers with\n\
         rate-limiting and sensor distrust + breaker lockout (never a global\n\
         reboot), and keeps the protection relay at full service. The passive\n\
         platform also keeps running — blind, with a spoofed frequency input\n\
         feeding its breaker logic."
    );
}
