//! Post-breach forensic investigation: the paper's evidence-continuity
//! story from the analyst's chair.
//!
//! A staged intrusion ends with the attacker wiping every log they can
//! reach. The investigator then pulls the SSM's evidence export, verifies
//! the HMAC chain, reconstructs the attack timeline phase by phase, checks
//! a single record against a Merkle seal — and finally demonstrates that a
//! tampered export is caught.
//!
//! Run: `cargo run --release --example forensics_investigation`

use cres::attacks::{CodeInjectionAttack, ExfilAttack, LogWipeAttack, MemoryProbeAttack};
use cres::forensics::{BreachReport, Phase, Timeline};
use cres::platform::{Platform, PlatformConfig, PlatformProfile, ScenarioRunner};
use cres::sim::{SimDuration, SimTime};
use cres::soc::addr::MasterId;
use cres::soc::soc::layout;
use cres::soc::task::TaskId;
use cres::ssm::EvidenceStore;

fn main() {
    println!("=== forensic investigation of a staged intrusion ===\n");
    let mut p = Platform::new(PlatformConfig::new(PlatformProfile::CyberResilient, 1337));
    ScenarioRunner::install_default_workload(&mut p);
    p.train_syscall_monitor(40);

    // --- the intrusion, driven step by step ---
    let probe = p.add_attack(Box::new(MemoryProbeAttack::new(
        MasterId::CPU1,
        vec![layout::SSM_PRIVATE.0, layout::TEE_SECURE.0],
    )));
    let gadget = p.soc.task(TaskId(1)).unwrap().current_block();
    let inject = p.add_attack(Box::new(CodeInjectionAttack::new(TaskId(1), gadget, 1)));
    let exfil = p.add_attack(Box::new(ExfilAttack::new(8_192, 2)));
    let wipe = p.add_attack(Box::new(LogWipeAttack::new(MasterId::CPU0)));

    let mut now = SimTime::at_cycle(1_000);
    let drive = |p: &mut Platform, now: &mut SimTime, steps: u32| {
        for _ in 0..steps {
            for id in p.soc.task_ids() {
                if let Some(d) = p.step_task_and_observe(id, *now) {
                    *now += d / 3;
                }
            }
        }
        let events = p.sample_monitors(*now);
        p.ingest_and_respond(*now, events);
        *now += SimDuration::cycles(10_000);
    };

    drive(&mut p, &mut now, 10); // benign lead-in
    p.attack_step(probe, now);
    p.attack_step(probe, now + SimDuration::cycles(100));
    drive(&mut p, &mut now, 3);
    p.attack_step(inject, now);
    drive(&mut p, &mut now, 3);
    p.attack_step(exfil, now);
    p.attack_step(exfil, now + SimDuration::cycles(50));
    drive(&mut p, &mut now, 3);
    p.attack_step(wipe, now); // anti-forensics
    drive(&mut p, &mut now, 3);
    p.ssm
        .record_recovery_started(now, "restart compromised task from clean image");
    now += SimDuration::cycles(60_000);
    p.ssm.record_recovered(now);

    // --- what the attacker wiped ---
    println!(
        "console log after wipe : {} lines (attacker-controlled memory)",
        p.soc.uart.lines().len()
    );

    // --- the investigation ---
    let key = p.evidence_key().to_vec();
    let export: Vec<_> = p.ssm.evidence().records().to_vec();
    println!(
        "evidence export        : {} records from SSM-private memory",
        export.len()
    );

    let report = BreachReport::generate(&key, &export);
    println!(
        "chain verification     : {}",
        if report.chain_intact() {
            "INTACT"
        } else {
            "VIOLATED"
        }
    );
    println!("incidents on record    : {}", report.incidents.len());
    println!("responses on record    : {}", report.responses.len());
    println!("recovery completed     : {}", report.recovered);

    let timeline = Timeline::reconstruct(&export);
    println!("\nreconstructed phases:");
    for phase in [
        Phase::PreIncident,
        Phase::Attack,
        Phase::Response,
        Phase::Recovery,
        Phase::PostRecovery,
    ] {
        println!(
            "  {:<13} {:>4} entries",
            phase.to_string(),
            timeline.in_phase(phase).count()
        );
    }

    // --- Merkle seal: prove one record to an external auditor ---
    let root = p
        .ssm
        .seal_evidence(SimTime::at_cycle(900_000))
        .expect("non-empty store");
    let mid = (export.len() / 2) as u64;
    let (proof, sealed_root) = p.ssm.evidence().prove_inclusion(mid).unwrap();
    assert_eq!(root, sealed_root);
    let ok =
        EvidenceStore::verify_inclusion(&p.ssm.evidence().records()[mid as usize], &proof, &root);
    println!(
        "\nMerkle inclusion proof for record #{mid}: {}",
        if ok { "verifies" } else { "FAILS" }
    );

    // --- tamper demonstration ---
    let mut tampered = export.clone();
    if let Some(rec) = tampered.iter_mut().find(|r| r.category == "incident") {
        rec.payload = "#0 routine maintenance event".into();
    }
    let cover_up = BreachReport::generate(&key, &tampered);
    println!(
        "tampered export check  : {}",
        cover_up
            .integrity_failure
            .as_deref()
            .unwrap_or("NOT DETECTED (bug!)")
    );

    println!("\n--- full breach report ---");
    print!("{}", report.render());
}
