//! Quickstart: build a cyber-resilient platform, run a benign workload,
//! inject one attack, and watch the detect → respond → recover → evidence
//! loop close.
//!
//! Run: `cargo run --release --example quickstart`

use cres::attacks::CodeInjectionAttack;
use cres::forensics::BreachReport;
use cres::platform::{Platform, PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres::sim::{SimDuration, SimTime};
use cres::soc::task::{BlockId, TaskId};

fn main() {
    // 1. Configure the paper's proposed topology: physically isolated SSM,
    //    full monitor set, active response.
    let config = PlatformConfig::new(PlatformProfile::CyberResilient, 42);

    // 2. A scenario: ~1M cycles of substation workload with a control-flow
    //    hijack of the protection-relay task injected at t=300k.
    let scenario = Scenario::quiet(SimDuration::cycles(1_000_000)).attack(
        SimTime::at_cycle(300_000),
        SimDuration::cycles(10_000),
        Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(0), 3)),
    );

    // 3. Run it.
    let report = ScenarioRunner::new(config).run(scenario);

    println!("=== quickstart run ===");
    println!("boot verified      : {}", report.boot_ok);
    println!("attack detected    : {}", report.attacks[0].detected());
    println!(
        "detection latency  : {}",
        report.attacks[0]
            .detection_latency
            .map_or("—".into(), |l| format!("{l} cycles"))
    );
    println!("incidents          : {}", report.total_incidents);
    println!("final health       : {}", report.final_health);
    println!("availability       : {:.2}%", report.availability * 100.0);
    println!("relay steps served : {}", report.critical_steps);
    println!(
        "evidence records   : {} (chain {})",
        report.evidence_len,
        if report.evidence_chain_ok {
            "intact"
        } else {
            "BROKEN"
        }
    );

    // 4. The forensic view: rebuild the platform the same way and rerun, to
    //    show the evidence export path on a live platform object.
    let mut platform = Platform::new(PlatformConfig::new(PlatformProfile::CyberResilient, 42));
    ScenarioRunner::install_default_workload(&mut platform);
    platform.train_syscall_monitor(30);
    let gadget = platform.soc.task(TaskId(1)).unwrap().current_block();
    let idx = platform.add_attack(Box::new(CodeInjectionAttack::new(TaskId(1), gadget, 1)));
    let mut now = SimTime::at_cycle(1);
    platform.attack_step(idx, now).unwrap();
    for _ in 0..4 {
        if let Some(d) = platform.step_task_and_observe(TaskId(1), now) {
            now += d;
        }
    }
    let events = platform.sample_monitors(now);
    platform.ingest_and_respond(now, events);

    let key = platform.evidence_key().to_vec();
    let breach = BreachReport::generate(&key, platform.ssm.evidence().records());
    println!("\n=== breach report (live platform) ===");
    print!("{}", breach.render());
}
