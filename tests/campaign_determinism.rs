//! The campaign engine's core guarantee: parallel fan-out is a pure
//! scheduling optimisation. The same campaign run on 1, 2 and 8 worker
//! threads yields identical `RunReport`s in submission order, and each of
//! them equals what a hand-rolled sequential `ScenarioRunner::run` loop
//! produces for the same `(config, scenario)` cells.

use cres::attacks::{
    AttackInjector, CodeInjectionAttack, LogWipeAttack, NetworkFloodAttack, SensorSpoofAttack,
    UnknownAttack,
};
use cres::platform::campaign::{Campaign, CampaignSummary, ScenarioSpec};
use cres::platform::{PlatformConfig, PlatformProfile, RunReport, Scenario, ScenarioRunner};
use cres::sim::{SimDuration, SimTime, Stage};
use cres::soc::addr::MasterId;
use cres::soc::periph::SensorSpoof;
use cres::soc::task::{BlockId, TaskId};

const DURATION: u64 = 250_000;

fn build(name: &str) -> Result<Box<dyn AttackInjector>, UnknownAttack> {
    Ok(match name {
        "code-injection" => Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(0), 3)) as _,
        "network-flood" => Box::new(NetworkFloodAttack::new(300, 6)) as _,
        "sensor-spoof" => Box::new(SensorSpoofAttack::new(0, SensorSpoof::Fixed(61.5))) as _,
        "log-wipe" => Box::new(LogWipeAttack::new(MasterId::CPU0)) as _,
        other => {
            return Err(UnknownAttack {
                name: other.to_string(),
            })
        }
    })
}

/// The campaign cells: a profile/seed/scenario mix exercising quiet runs,
/// single attacks and a staged multi-attack chain. Telemetry is toggled
/// off for one cell per profile/seed block so the mixed on/off path is
/// exercised too (a disabled cell must contribute nothing to the merge).
fn cells() -> Vec<(PlatformConfig, ScenarioSpec)> {
    let mut cells = Vec::new();
    for profile in [
        PlatformProfile::CyberResilient,
        PlatformProfile::PassiveTrust,
    ] {
        for seed in [7u64, 1234] {
            let mut quiet_config = PlatformConfig::new(profile, seed);
            quiet_config.telemetry.enabled = false;
            cells.push((
                quiet_config,
                ScenarioSpec::quiet(SimDuration::cycles(DURATION)),
            ));
            cells.push((
                PlatformConfig::new(profile, seed),
                ScenarioSpec::quiet(SimDuration::cycles(DURATION)).attack(
                    "network-flood",
                    SimTime::at_cycle(60_000),
                    SimDuration::cycles(2_000),
                ),
            ));
            cells.push((
                PlatformConfig::new(profile, seed),
                ScenarioSpec::quiet(SimDuration::cycles(DURATION))
                    .attack(
                        "code-injection",
                        SimTime::at_cycle(50_000),
                        SimDuration::cycles(5_000),
                    )
                    .attack(
                        "sensor-spoof",
                        SimTime::at_cycle(100_000),
                        SimDuration::cycles(1_000),
                    )
                    .attack(
                        "log-wipe",
                        SimTime::at_cycle(150_000),
                        SimDuration::cycles(1_000),
                    ),
            ));
            // A hostile fault plane (lossy interconnect + crashed monitor)
            // must not dent determinism either: its RNG stream is forked
            // per-platform, never shared across workers.
            let mut faulted_config = PlatformConfig::new(profile, seed);
            faulted_config.faultplane =
                cres::platform::FaultPlaneConfig::sweep_cell(0.15, 1, 40_000);
            cells.push((
                faulted_config,
                ScenarioSpec::quiet(SimDuration::cycles(DURATION)).attack(
                    "network-flood",
                    SimTime::at_cycle(60_000),
                    SimDuration::cycles(2_000),
                ),
            ));
        }
    }
    cells
}

fn run_with_threads(threads: usize) -> CampaignSummary {
    let mut campaign = Campaign::new(build);
    for (index, (config, spec)) in cells().into_iter().enumerate() {
        campaign.submit(format!("cell-{index}"), config, spec);
    }
    campaign
        .run_parallel(threads)
        .expect("all cell attacks resolve")
}

/// The reference: a plain loop materialising each scenario and running it
/// on the calling thread, no campaign machinery at all.
fn hand_rolled_sequential() -> Vec<RunReport> {
    cells()
        .into_iter()
        .map(|(config, spec)| {
            let mut scenario = Scenario::quiet(spec.duration);
            for attack in &spec.attacks {
                scenario = scenario.attack(
                    attack.start,
                    attack.step_interval,
                    build(&attack.name).expect("known attack"),
                );
            }
            ScenarioRunner::new(config).run(scenario)
        })
        .collect()
}

fn assert_reports_identical(context: &str, expected: &[RunReport], actual: &[RunReport]) {
    assert_eq!(expected.len(), actual.len(), "{context}: job count");
    for (index, (e, a)) in expected.iter().zip(actual).enumerate() {
        // the named determinism-critical fields first, for readable failures
        assert_eq!(
            e.critical_steps, a.critical_steps,
            "{context}: job {index} critical_steps"
        );
        assert_eq!(
            e.total_events, a.total_events,
            "{context}: job {index} total_events"
        );
        assert_eq!(
            e.total_incidents, a.total_incidents,
            "{context}: job {index} total_incidents"
        );
        assert_eq!(
            e.evidence_len, a.evidence_len,
            "{context}: job {index} evidence_len"
        );
        assert_eq!(
            e.evidence_coverage, a.evidence_coverage,
            "{context}: job {index} evidence_coverage"
        );
        // then the whole report, bit for bit
        assert_eq!(e, a, "{context}: job {index} full report");
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let reference = run_with_threads(1);
    let reference_reports: Vec<RunReport> =
        reference.results.iter().map(|r| r.report.clone()).collect();
    for threads in [2, 8] {
        let summary = run_with_threads(threads);
        assert_eq!(summary.threads, threads.min(reference_reports.len()));
        let reports: Vec<RunReport> = summary.results.iter().map(|r| r.report.clone()).collect();
        assert_reports_identical(&format!("{threads} threads"), &reference_reports, &reports);
        // labels stay in submission order too
        for (index, result) in summary.results.iter().enumerate() {
            assert_eq!(result.label, format!("cell-{index}"), "{threads} threads");
        }
    }
}

/// The telemetry layer inherits the engine's determinism guarantee: the
/// submission-order fold over per-run snapshots must not care how the runs
/// were scheduled, and cells that ran with telemetry disabled contribute
/// nothing (rather than poisoning the merge).
#[test]
fn merged_telemetry_does_not_depend_on_thread_count() {
    let reference = run_with_threads(1);
    let merged = reference
        .merged_telemetry()
        .expect("telemetry-enabled cells present");
    assert!(merged.spans_recorded > 0, "pipeline spans were recorded");
    assert!(
        merged.stage(Stage::MonitorSample).is_some(),
        "monitor stage present in merged stats"
    );
    // Per-run telemetry: disabled cells carry None, enabled cells Some.
    for (result, (config, _)) in reference.results.iter().zip(cells()) {
        assert_eq!(
            result.report.telemetry.is_some(),
            config.telemetry.enabled,
            "telemetry presence follows the per-cell config ({})",
            result.label
        );
    }
    for threads in [2, 8] {
        let summary = run_with_threads(threads);
        assert_eq!(
            summary.merged_telemetry().as_ref(),
            Some(&merged),
            "{threads} threads: merged telemetry"
        );
    }
}

#[test]
fn engine_matches_hand_rolled_sequential_loop() {
    let reference = hand_rolled_sequential();
    for threads in [1, 2, 8] {
        let summary = run_with_threads(threads);
        let reports: Vec<RunReport> = summary.results.iter().map(|r| r.report.clone()).collect();
        assert_reports_identical(
            &format!("engine({threads} threads) vs hand-rolled"),
            &reference,
            &reports,
        );
    }
}
