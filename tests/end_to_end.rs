//! End-to-end integration: the full detect → respond → recover → evidence
//! lifecycle across platform profiles.

use cres::attacks::{CodeInjectionAttack, ExfilAttack, MemoryProbeAttack, NetworkFloodAttack};
use cres::forensics::BreachReport;
use cres::platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres::sim::{SimDuration, SimTime};
use cres::soc::addr::MasterId;
use cres::soc::soc::layout;
use cres::soc::task::{BlockId, TaskId};
use cres::ssm::HealthState;

fn cres_config(seed: u64) -> PlatformConfig {
    PlatformConfig::new(PlatformProfile::CyberResilient, seed)
}

#[test]
fn full_lifecycle_detect_respond_recover() {
    let scenario = Scenario::quiet(SimDuration::cycles(1_000_000)).attack(
        SimTime::at_cycle(200_000),
        SimDuration::cycles(8_000),
        Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(0), 3)),
    );
    let report = ScenarioRunner::new(cres_config(1)).run(scenario);
    assert!(report.boot_ok);
    assert!(report.attacks[0].detected());
    assert!(report.total_incidents >= 1);
    // recovery completed: quiet window after the 3-step attack
    assert_eq!(report.final_health, HealthState::Healthy);
    assert!(report.evidence_chain_ok);
    assert!(report.evidence_len > 0);
    // the relay kept serving: the attack killed/restarted the task but the
    // platform never globally rebooted
    assert_eq!(report.reboots, 0);
    assert!(report.critical_steps > 1_000);
}

#[test]
fn multi_attack_campaign_all_detected() {
    let scenario = Scenario::quiet(SimDuration::cycles(1_500_000))
        .attack(
            SimTime::at_cycle(200_000),
            SimDuration::cycles(3_000),
            Box::new(NetworkFloodAttack::new(300, 6)),
        )
        .attack(
            SimTime::at_cycle(500_000),
            SimDuration::cycles(5_000),
            Box::new(MemoryProbeAttack::new(
                MasterId::CPU1,
                vec![layout::SSM_PRIVATE.0, layout::TEE_SECURE.0],
            )),
        )
        .attack(
            SimTime::at_cycle(800_000),
            SimDuration::cycles(5_000),
            Box::new(ExfilAttack::new(8_192, 4)),
        );
    let report = ScenarioRunner::new(cres_config(2)).run(scenario);
    for a in &report.attacks {
        assert!(a.detected(), "{} missed", a.name);
    }
    assert!(report.evidence_chain_ok);
    assert!(
        report.evidence_coverage > 0.5,
        "coverage {}",
        report.evidence_coverage
    );
}

#[test]
fn baseline_blind_but_still_boots_securely() {
    let scenario = Scenario::quiet(SimDuration::cycles(800_000)).attack(
        SimTime::at_cycle(200_000),
        SimDuration::cycles(5_000),
        Box::new(MemoryProbeAttack::new(
            MasterId::CPU1,
            vec![layout::SSM_PRIVATE.0],
        )),
    );
    let report =
        ScenarioRunner::new(PlatformConfig::new(PlatformProfile::PassiveTrust, 2)).run(scenario);
    assert!(report.boot_ok, "secure boot still works on the baseline");
    assert!(!report.attacks[0].detected());
    assert_eq!(report.total_incidents, 0);
    // and the probe actually stole data: the shared topology granted it
    assert!(report.attacks[0].steps_achieved > 0);
}

#[test]
fn isolated_topology_blocks_what_shared_grants() {
    let probe = |profile| {
        let scenario = Scenario::quiet(SimDuration::cycles(600_000)).attack(
            SimTime::at_cycle(200_000),
            SimDuration::cycles(5_000),
            Box::new(MemoryProbeAttack::new(
                MasterId::CPU1,
                vec![layout::SSM_PRIVATE.0, layout::SSM_PRIVATE.0.offset(64)],
            )),
        );
        ScenarioRunner::new(PlatformConfig::new(profile, 3)).run(scenario)
    };
    let isolated = probe(PlatformProfile::CyberResilient);
    let shared = probe(PlatformProfile::TeeShared);
    assert_eq!(isolated.attacks[0].steps_achieved, 0, "isolation breached");
    assert!(
        shared.attacks[0].steps_achieved > 0,
        "shared topology should grant"
    );
}

#[test]
fn breach_report_from_run_verifies_and_renders() {
    use cres::platform::Platform;
    let mut p = Platform::new(cres_config(4));
    ScenarioRunner::install_default_workload(&mut p);
    p.train_syscall_monitor(30);
    let gadget = p.soc.task(TaskId(1)).unwrap().current_block();
    let idx = p.add_attack(Box::new(CodeInjectionAttack::new(TaskId(1), gadget, 1)));
    let mut now = SimTime::at_cycle(1);
    p.attack_step(idx, now).unwrap();
    for _ in 0..5 {
        if let Some(d) = p.step_task_and_observe(TaskId(1), now) {
            now += d;
        }
    }
    let events = p.sample_monitors(now);
    p.ingest_and_respond(now, events);

    let key = p.evidence_key().to_vec();
    let report = BreachReport::generate(&key, p.ssm.evidence().records());
    assert!(report.chain_intact());
    assert!(!report.incidents.is_empty());
    assert!(!report.responses.is_empty());
    let text = report.render();
    assert!(text.contains("CodeInjection"));
    assert!(text.contains("KillTask"));

    // wrong key → integrity violation (the report does not lie)
    let wrong = BreachReport::generate(b"wrong-key", p.ssm.evidence().records());
    assert!(!wrong.chain_intact());
}

#[test]
fn availability_recovers_after_transient_attack() {
    let scenario = Scenario::quiet(SimDuration::cycles(2_000_000)).attack(
        SimTime::at_cycle(300_000),
        SimDuration::cycles(2_000),
        Box::new(NetworkFloodAttack::new(200, 4)),
    );
    let report = ScenarioRunner::new(cres_config(5)).run(scenario);
    assert_eq!(
        report.final_health,
        HealthState::Healthy,
        "flood should clear"
    );
    // attack window + recovery window is small relative to 2M cycles
    assert!(
        report.availability > 0.8,
        "availability {}",
        report.availability
    );
}
