//! Reproducibility invariants: every run is a pure function of
//! (profile, seed, scenario).

use cres::attacks::NetworkFloodAttack;
use cres::platform::{PlatformConfig, PlatformProfile, RunReport, Scenario, ScenarioRunner};
use cres::sim::{SimDuration, SimTime};

fn run(profile: PlatformProfile, seed: u64) -> RunReport {
    let scenario = Scenario::quiet(SimDuration::cycles(500_000)).attack(
        SimTime::at_cycle(150_000),
        SimDuration::cycles(3_000),
        Box::new(NetworkFloodAttack::new(250, 5)),
    );
    ScenarioRunner::new(PlatformConfig::new(profile, seed)).run(scenario)
}

#[test]
fn identical_runs_are_bit_identical() {
    for profile in [
        PlatformProfile::CyberResilient,
        PlatformProfile::PassiveTrust,
    ] {
        let a = run(profile, 7);
        let b = run(profile, 7);
        assert_eq!(a, b, "{profile} run not reproducible");
    }
}

#[test]
fn different_seeds_differ_in_detail_but_agree_in_shape() {
    let a = run(PlatformProfile::CyberResilient, 1);
    let b = run(PlatformProfile::CyberResilient, 2);
    // determinism boundaries: events/evidence differ with workload noise…
    assert_ne!(
        (a.total_events, a.critical_steps),
        (b.total_events, b.critical_steps)
    );
    // …but both detect the flood
    assert!(a.attacks[0].detected());
    assert!(b.attacks[0].detected());
}

#[test]
fn profiles_differ_under_same_seed() {
    let cres = run(PlatformProfile::CyberResilient, 3);
    let passive = run(PlatformProfile::PassiveTrust, 3);
    assert!(cres.attacks[0].detected());
    assert!(!passive.attacks[0].detected());
    assert!(cres.evidence_len > 0);
    assert_eq!(passive.total_incidents, 0);
}
