//! Golden DSL scenarios: three hand-written `.toml` fixtures (single
//! stage, multi-stage chain, decoy-heavy) with blessed `RunReport`
//! outputs at seed 42 — the `tests/report_goldens.rs` pattern applied to
//! the scenario DSL. Any change to the parser, the spec compilation or
//! the detection pipeline that perturbs these runs shows up as a byte
//! diff.
//!
//! Regenerate deliberately with:
//!
//! ```text
//! CRES_BLESS=1 cargo test --test scenario_goldens
//! ```

use cres::scenario::{classify, parse, run_one, serialize, verify_pinned};
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 42;
const FIXTURES: [&str; 3] = ["single_stage", "multi_stage", "decoy_heavy"];

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/scenarios")
}

fn bless_mode() -> bool {
    std::env::var("CRES_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[test]
fn golden_scenarios_match_blessed_reports() {
    for stem in FIXTURES {
        let scenario_path = fixtures_dir().join(format!("{stem}.toml"));
        let text = std::fs::read_to_string(&scenario_path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", scenario_path.display()));
        let doc = parse(&text).unwrap_or_else(|e| panic!("{stem}: {e}"));
        doc.validate().unwrap_or_else(|e| panic!("{stem}: {e}"));
        let expect = doc
            .expect
            .as_ref()
            .unwrap_or_else(|| panic!("{stem}: golden scenarios must carry an [expect] block"));
        assert_eq!(expect.seed, GOLDEN_SEED, "{stem}");

        let report =
            run_one(&doc, expect.profile, expect.seed).unwrap_or_else(|e| panic!("{stem}: {e}"));
        let json = report.to_json();
        let report_path = fixtures_dir().join(format!("report_{stem}.json"));
        if bless_mode() {
            std::fs::write(&report_path, &json)
                .unwrap_or_else(|e| panic!("writing {}: {e}", report_path.display()));
            eprintln!(
                "blessed {} ({})",
                report_path.display(),
                classify(&doc, &report).classification.name()
            );
            continue;
        }
        let golden = std::fs::read_to_string(&report_path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run CRES_BLESS=1 cargo test --test scenario_goldens",
                report_path.display()
            )
        });
        assert_eq!(
            json,
            golden,
            "{stem} report diverged from {} — if intentional, re-bless and review the diff",
            report_path.display()
        );
        // the recorded classification must hold too
        verify_pinned(&doc).unwrap_or_else(|e| panic!("{stem}: {e}"));
    }
}

#[test]
fn golden_scenarios_are_canonical_dsl() {
    if bless_mode() {
        return;
    }
    for stem in FIXTURES {
        let path = fixtures_dir().join(format!("{stem}.toml"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let doc = parse(&text).unwrap_or_else(|e| panic!("{stem}: {e}"));
        // round-trip is lossless even for hand-written (non-canonical) text
        assert_eq!(
            parse(&serialize(&doc)).unwrap_or_else(|e| panic!("{stem}: {e}")),
            doc,
            "{stem}: serialize/parse round trip"
        );
    }
}
