//! E8's scaling law, pinned as assertions: monitoring overhead falls with
//! the sampling period while detection latency grows with it, and the
//! monitor stack never costs critical-task throughput.

use cres::attacks::CodeInjectionAttack;
use cres::platform::{PlatformConfig, PlatformProfile, RunReport, Scenario, ScenarioRunner};
use cres::sim::{SimDuration, SimTime};
use cres::soc::task::{BlockId, TaskId};

const DURATION: u64 = 600_000;

fn run_with_period(period: u64) -> RunReport {
    let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, 17);
    config.monitor_period = SimDuration::cycles(period);
    let scenario = Scenario::quiet(SimDuration::cycles(DURATION)).attack(
        SimTime::at_cycle(300_000),
        SimDuration::cycles(8_000),
        Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(0), 2)),
    );
    ScenarioRunner::new(config).run(scenario)
}

#[test]
fn overhead_falls_as_period_grows() {
    let fast = run_with_period(1_000);
    let mid = run_with_period(10_000);
    let slow = run_with_period(100_000);
    assert!(
        fast.monitor_overhead_cycles > mid.monitor_overhead_cycles,
        "{} !> {}",
        fast.monitor_overhead_cycles,
        mid.monitor_overhead_cycles
    );
    assert!(mid.monitor_overhead_cycles > slow.monitor_overhead_cycles);
    // even the fastest sampling stays cheap (< 5% of the run)
    assert!((fast.monitor_overhead_cycles as f64) < 0.05 * DURATION as f64);
}

#[test]
fn detection_latency_is_bounded_by_the_sampling_period() {
    for period in [2_000u64, 10_000, 50_000] {
        let report = run_with_period(period);
        let latency = report.attacks[0]
            .detection_latency
            .unwrap_or_else(|| panic!("missed at period {period}"));
        // the hijacked edge executes within one task step (< ~500 cycles);
        // classification waits for at most ~2 sampling boundaries plus the
        // attack's own step interval
        assert!(
            latency <= 2 * period + 10_000,
            "period {period}: latency {latency}"
        );
    }
}

#[test]
fn monitoring_never_costs_relay_throughput() {
    let fast = run_with_period(1_000);
    let slow = run_with_period(100_000);
    let ratio = fast.critical_steps as f64 / slow.critical_steps as f64;
    assert!(
        (0.98..=1.02).contains(&ratio),
        "sampling rate changed relay throughput: {ratio}"
    );
}

#[test]
fn baseline_overhead_is_minimal_and_blind() {
    let config = PlatformConfig::new(PlatformProfile::PassiveTrust, 17);
    let scenario = Scenario::quiet(SimDuration::cycles(DURATION)).attack(
        SimTime::at_cycle(300_000),
        SimDuration::cycles(8_000),
        Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(0), 2)),
    );
    let report = ScenarioRunner::new(config).run(scenario);
    let cres = run_with_period(5_000);
    assert!(report.monitor_overhead_cycles < cres.monitor_overhead_cycles / 5);
    assert!(!report.attacks[0].detected());
}
