//! Cross-crate consistency of the paper's requirement mapping (Table I):
//! the policy layer's capability vocabulary must be actually realised by
//! the monitor and response implementations.

use cres::monitor::bus_mon::AccessWindow;
use cres::monitor::io_mon::SensorEnvelope;
use cres::monitor::{
    BusPolicyMonitor, CfiMonitor, EnvMonitor, MemoryGuardMonitor, NetworkMonitor, ResourceMonitor,
    SensorMonitor, SyscallMonitor, TaintMonitor, WatchdogMonitor,
};
use cres::policy::mapping::table1;
use cres::policy::{AssetInventory, DetectionCapability, ResponseCapability, ThreatModel};
use cres::sim::SimDuration;
use cres::ssm::ResponseAction;
use std::collections::BTreeSet;

/// The detection capabilities the monitor crate actually implements.
fn implemented_detections() -> BTreeSet<DetectionCapability> {
    let monitors: Vec<Box<dyn ResourceMonitor>> = vec![
        Box::new(BusPolicyMonitor::new(Vec::<AccessWindow>::new(), true)),
        Box::new(MemoryGuardMonitor::new(vec![], vec![])),
        Box::new(CfiMonitor::new()),
        Box::new(SyscallMonitor::new([])),
        Box::new(NetworkMonitor::new(10, 10)),
        Box::new(SensorMonitor::new(
            0,
            SensorEnvelope {
                min: 0.0,
                max: 1.0,
                max_step: 1.0,
            },
        )),
        Box::new(EnvMonitor::default()),
        Box::new(TaintMonitor::new(vec![], vec![], SimDuration::cycles(1))),
        Box::new(WatchdogMonitor::new()),
    ];
    let mut caps: BTreeSet<DetectionCapability> = monitors.iter().map(|m| m.capability()).collect();
    // NetworkMonitor emits signature events too (secondary capability)
    caps.insert(DetectionCapability::NetworkSignature);
    // boot measurement is realised by cres-boot's measured chain
    caps.insert(DetectionCapability::BootMeasurement);
    caps
}

/// The response capabilities realised as executable actions.
fn implemented_responses() -> BTreeSet<ResponseCapability> {
    use cres::soc::addr::MasterId;
    use cres::soc::task::TaskId;
    // Each ResponseCapability maps to at least one concrete ResponseAction.
    let witnesses: Vec<(ResponseCapability, ResponseAction)> = vec![
        (
            ResponseCapability::IsolateMaster,
            ResponseAction::IsolateMaster(MasterId::DMA),
        ),
        (
            ResponseCapability::KillTask,
            ResponseAction::KillTask(TaskId(0)),
        ),
        (
            ResponseCapability::RestartTask,
            ResponseAction::RestartTask(TaskId(0)),
        ),
        (
            ResponseCapability::QuarantineNetwork,
            ResponseAction::QuarantineNetwork,
        ),
        (
            ResponseCapability::RateLimit,
            ResponseAction::RateLimitNetwork(1),
        ),
        (ResponseCapability::ZeroizeKeys, ResponseAction::ZeroizeKeys),
        (
            ResponseCapability::Rollback,
            ResponseAction::RollbackFirmware,
        ),
        (
            ResponseCapability::GoldenRecovery,
            ResponseAction::GoldenRecovery,
        ),
        (ResponseCapability::Reboot, ResponseAction::RebootSystem),
        (
            ResponseCapability::DegradedMode,
            ResponseAction::EnterDegradedMode,
        ),
        (
            ResponseCapability::ActuatorLockout,
            ResponseAction::LockActuators,
        ),
    ];
    witnesses.into_iter().map(|(c, _)| c).collect()
}

#[test]
fn every_detection_capability_is_implemented() {
    let implemented = implemented_detections();
    for cap in DetectionCapability::ALL {
        assert!(
            implemented.contains(&cap),
            "{cap} has no implementing monitor"
        );
    }
}

#[test]
fn every_response_capability_is_implemented() {
    let implemented = implemented_responses();
    for cap in ResponseCapability::ALL {
        assert!(
            implemented.contains(&cap),
            "{cap} has no implementing action"
        );
    }
}

#[test]
fn substation_threat_model_fully_covered_by_implementation() {
    let inv = AssetInventory::substation_example();
    let tm = ThreatModel::generate(&inv);
    let coverage = tm.detection_coverage(&inv, &implemented_detections());
    assert_eq!(
        coverage, 1.0,
        "implemented monitors do not cover the threat model"
    );
    for resp in tm.required_responses(&inv) {
        assert!(
            implemented_responses().contains(&resp),
            "required response {resp} unimplemented"
        );
    }
}

#[test]
fn table1_requirements_all_mapped() {
    for row in table1() {
        for req in &row.requirements {
            assert!(
                !req.implemented_by.is_empty(),
                "Table I requirement {:?} unimplemented",
                req.name
            );
        }
    }
}
