//! Randomised soak: across seeds and attack mixes, the platform-wide
//! invariants hold — the evidence chain always verifies, availability stays
//! a valid fraction, the attack is detected, and identical runs agree.

use cres::platform::{PlatformConfig, PlatformProfile, RunReport, Scenario, ScenarioRunner};
use cres::sim::{SimDuration, SimTime};

const ATTACK_MIX: [&str; 5] = [
    "network-flood",
    "memory-probe",
    "sensor-spoof",
    "exfiltration",
    "code-injection",
];

fn build_attack(name: &str) -> Box<dyn cres::attacks::AttackInjector> {
    use cres::attacks::*;
    use cres::soc::addr::MasterId;
    use cres::soc::periph::SensorSpoof;
    use cres::soc::soc::layout;
    use cres::soc::task::{BlockId, TaskId};
    match name {
        "network-flood" => Box::new(NetworkFloodAttack::new(250, 5)),
        "memory-probe" => Box::new(MemoryProbeAttack::new(
            MasterId::CPU1,
            vec![layout::SSM_PRIVATE.0, layout::TEE_SECURE.0],
        )),
        "sensor-spoof" => Box::new(SensorSpoofAttack::new(0, SensorSpoof::Fixed(60.0))),
        "exfiltration" => Box::new(ExfilAttack::new(4_096, 4)),
        "code-injection" => Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(0), 2)),
        _ => unreachable!(),
    }
}

fn run(seed: u64) -> RunReport {
    let attack = ATTACK_MIX[(seed % ATTACK_MIX.len() as u64) as usize];
    let scenario = Scenario::quiet(SimDuration::cycles(500_000)).attack(
        SimTime::at_cycle(150_000 + (seed % 7) * 10_000),
        SimDuration::cycles(3_000 + (seed % 3) * 2_000),
        build_attack(attack),
    );
    ScenarioRunner::new(PlatformConfig::new(PlatformProfile::CyberResilient, seed)).run(scenario)
}

#[test]
fn invariants_hold_across_seeds_and_attack_mixes() {
    for seed in 0..10u64 {
        let report = run(seed);
        assert!(report.boot_ok, "seed {seed}: boot failed");
        assert!(report.evidence_chain_ok, "seed {seed}: chain broken");
        assert!(
            (0.0..=1.0).contains(&report.availability),
            "seed {seed}: availability {}",
            report.availability
        );
        assert!(
            (0.0..=1.0).contains(&report.evidence_coverage),
            "seed {seed}: coverage {}",
            report.evidence_coverage
        );
        assert!(
            report.attacks[0].detected(),
            "seed {seed}: {} missed",
            report.attacks[0].name
        );
        assert!(report.critical_steps > 500, "seed {seed}: relay starved");
        assert!(report.evidence_seals >= 1, "seed {seed}: never sealed");
    }
}

#[test]
fn soak_runs_are_reproducible() {
    for seed in [3u64, 8] {
        assert_eq!(run(seed), run(seed), "seed {seed} diverged");
    }
}
