//! Cross-crate integration of the boot chain, update engine, OTP counters
//! and the platform's recovery plumbing.

use cres::boot::{BootOutcome, FirmwareImage, Slot, UpdateError};
use cres::platform::{Platform, PlatformConfig, PlatformProfile};

fn platform() -> Platform {
    Platform::new(PlatformConfig::new(PlatformProfile::CyberResilient, 909))
}

#[test]
fn factory_platform_boots_with_measured_pcrs() {
    let p = platform();
    assert!(p.boot_report.booted());
    assert_eq!(p.boot_report.stages.len(), 2); // bootloader + app
                                               // PCR0 (ROM), PCR1 (bootloader), PCR2 (app) all extended
    assert_ne!(p.boot_report.pcrs[0], [0u8; 32]);
    assert_ne!(p.boot_report.pcrs[1], [0u8; 32]);
    assert_ne!(p.boot_report.pcrs[2], [0u8; 32]);
}

#[test]
fn ota_update_then_reboot_reproduces_different_pcrs() {
    let mut p = platform();
    let before = p.boot_report.pcrs;
    let v2 = p.signer.sign("app", 2, 2, b"app v2").to_bytes();
    p.update.stage(&mut p.slots, v2);
    p.update
        .commit(&mut p.slots, p.chain.rom(), &p.vendor_public, &mut p.arb)
        .unwrap();
    // reboot: re-run the chain over the new active slot
    let sig_len = p.vendor_public.modulus_len();
    let bl = FirmwareImage::from_bytes(p.bootloader_bytes(), sig_len).unwrap();
    let app = FirmwareImage::from_bytes(p.slots.active_bytes(), sig_len).unwrap();
    let report = p.chain.boot(&[&bl, &app], &mut p.arb);
    assert!(report.booted());
    assert_ne!(
        report.pcrs[2], before[2],
        "app PCR must change with the image"
    );
    assert_eq!(report.pcrs[1], before[1], "bootloader PCR unchanged");
}

#[test]
fn downgrade_blocked_after_update_via_platform_arb() {
    let mut p = platform();
    let v3 = p.signer.sign("app", 3, 3, b"app v3").to_bytes();
    p.update.stage(&mut p.slots, v3);
    p.update
        .commit(&mut p.slots, p.chain.rom(), &p.vendor_public, &mut p.arb)
        .unwrap();
    // replay factory v1 through the update path
    let v1 = p.signer.sign("app", 1, 1, b"app v1 replay").to_bytes();
    p.update.stage(&mut p.slots, v1);
    let err = p
        .update
        .commit(&mut p.slots, p.chain.rom(), &p.vendor_public, &mut p.arb)
        .unwrap_err();
    assert!(matches!(err, UpdateError::Verify(_)));
    // booting the staged v1 directly also fails
    let sig_len = p.vendor_public.modulus_len();
    let staged =
        FirmwareImage::from_bytes(p.slots.slot(p.slots.active().other()), sig_len).unwrap();
    let report = p.chain.boot(&[&staged], &mut p.arb);
    assert_eq!(report.outcome, BootOutcome::FailedAt(0));
}

#[test]
fn golden_recovery_restores_bootable_factory_state() {
    let mut p = platform();
    p.slots.write_slot(Slot::A, b"destroyed".to_vec());
    p.slots.write_slot(Slot::B, b"destroyed".to_vec());
    p.update.recover_golden(&mut p.slots);
    let sig_len = p.vendor_public.modulus_len();
    let app = FirmwareImage::from_bytes(p.slots.active_bytes(), sig_len).unwrap();
    assert!(app.verify(&p.vendor_public).is_ok());
    assert_eq!(app.header.version, 1);
}

#[test]
fn otp_root_key_fingerprint_fused_once() {
    let mut p = platform();
    let fp = p.soc.otp.read("root_key_fp").unwrap().to_vec();
    assert_eq!(fp, p.vendor_public.fingerprint());
    // refusing a second programming attempt
    assert!(p.soc.otp.program("root_key_fp", &[0u8; 8]).is_err());
}

#[test]
fn tee_attestation_covers_boot_measurements() {
    let p = platform();
    let mut measurement = Vec::new();
    for pcr in &p.boot_report.pcrs {
        measurement.extend_from_slice(pcr);
    }
    let quote = p.tee.attest(&measurement);
    assert!(p.tee.verify_attestation(&measurement, &quote));
    // a downgraded boot path would change the PCRs and fail the quote
    let mut other = measurement.clone();
    other[40] ^= 1;
    assert!(!p.tee.verify_attestation(&other, &quote));
}
