//! Golden `RunReport` fixtures: one cell per platform profile at a fixed
//! seed, committed under `tests/fixtures/` and compared byte-for-byte.
//!
//! This is the safety net for hot-path refactors (interned monitor names,
//! lazy detail rendering, buffer reuse): any change that perturbs event
//! ordering, evidence payload text, correlation outcomes, or the JSON
//! encoding itself shows up here as a fixture diff.
//!
//! Regenerate deliberately with:
//!
//! ```text
//! CRES_BLESS=1 cargo test --test report_goldens
//! ```
//!
//! and review the diff like any other behavioural change.

use cres::attacks::{CodeInjectionAttack, DebugPortAttack, ExfilAttack, SensorSpoofAttack};
use cres::platform::{PlatformConfig, PlatformProfile, RunReport, Scenario, ScenarioRunner};
use cres::sim::{SimDuration, SimTime};
use cres::soc::periph::SensorSpoof;
use cres::soc::soc::layout;
use cres::soc::task::{BlockId, TaskId};
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 42;

/// A mixed gauntlet slice that exercises the breadth of detail variants:
/// CFI edges, debug-port bus taps, network exfiltration signatures and
/// sensor plausibility — including both string-classified incident kinds
/// (debug-port, exfiltration).
fn golden_scenario() -> Scenario {
    Scenario::quiet(SimDuration::cycles(1_200_000))
        .attack(
            SimTime::at_cycle(200_000),
            SimDuration::cycles(8_000),
            Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(0), 3)),
        )
        .attack(
            SimTime::at_cycle(450_000),
            SimDuration::cycles(4_000),
            Box::new(DebugPortAttack::new(vec![
                layout::SRAM.0,
                layout::TEE_SECURE.0,
                layout::SSM_PRIVATE.0,
            ])),
        )
        .attack(
            SimTime::at_cycle(700_000),
            SimDuration::cycles(5_000),
            Box::new(ExfilAttack::new(4_096, 4)),
        )
        .attack(
            SimTime::at_cycle(950_000),
            SimDuration::cycles(6_000),
            Box::new(SensorSpoofAttack::new(0, SensorSpoof::Fixed(61.5))),
        )
}

fn fixture_path(profile: PlatformProfile) -> PathBuf {
    let stem = match profile {
        PlatformProfile::CyberResilient => "cyber_resilient",
        PlatformProfile::PassiveTrust => "passive_trust",
        PlatformProfile::TeeShared => "tee_shared",
    };
    named_fixture_path(stem)
}

fn named_fixture_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("report_{stem}.json"))
}

fn bless_mode() -> bool {
    std::env::var("CRES_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn run_cell(profile: PlatformProfile) -> RunReport {
    ScenarioRunner::new(PlatformConfig::new(profile, GOLDEN_SEED)).run(golden_scenario())
}

#[test]
fn reports_match_committed_goldens() {
    for profile in PlatformProfile::ALL {
        let report = run_cell(profile);
        let json = report.to_json();
        let path = fixture_path(profile);
        if bless_mode() {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &json)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            eprintln!("blessed {}", path.display());
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run CRES_BLESS=1 cargo test --test report_goldens",
                path.display()
            )
        });
        assert_eq!(
            json,
            golden,
            "{profile} report diverged from {} — if intentional, re-bless and review the diff",
            path.display()
        );
    }
}

#[test]
fn goldens_decode_and_roundtrip() {
    if bless_mode() {
        return;
    }
    for profile in PlatformProfile::ALL {
        let path = fixture_path(profile);
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {} ({e})", path.display()));
        let report = RunReport::from_json(&golden).expect("golden decodes");
        assert_eq!(report.profile, profile);
        assert_eq!(report.seed, GOLDEN_SEED);
        assert_eq!(report.to_json(), golden, "{profile} golden not canonical");
    }
}

/// The policy-armed cell: same scenario and seed as the CyberResilient
/// golden, with the response policy engine enabled — so the fixture pins
/// the `availability_detail` block (tiers, breakers, per-class service
/// accounting) byte-for-byte alongside the legacy cells, which must stay
/// untouched by the schema addition.
#[test]
fn policy_report_matches_committed_golden() {
    let mut config = PlatformConfig::new(PlatformProfile::CyberResilient, GOLDEN_SEED);
    config.policy = cres::response::PolicyConfig::enabled();
    let report = ScenarioRunner::new(config).run(golden_scenario());
    let json = report.to_json();
    let path = named_fixture_path("policy_tiers");
    if bless_mode() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run CRES_BLESS=1 cargo test --test report_goldens",
            path.display()
        )
    });
    assert_eq!(
        json,
        golden,
        "policy report diverged from {} — if intentional, re-bless and review the diff",
        path.display()
    );
    assert!(golden.contains("\"availability_detail\":{"));
    let decoded = RunReport::from_json(&golden).expect("policy golden decodes");
    let detail = decoded
        .availability_detail
        .as_ref()
        .expect("policy golden carries the availability block");
    assert!(detail.critical_offered > 0);
    assert_eq!(decoded.to_json(), golden, "policy golden not canonical");
}
