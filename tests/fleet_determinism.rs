//! The fleet runner's core guarantee, mirroring `campaign_determinism`:
//! sharding is a pure scheduling optimisation. The same fleet config run
//! on 1, 2 and 8 workers yields byte-equal `FleetVerdict` JSON, and each
//! of them equals what a hand-rolled sequential loop — no channels, no
//! reorder buffer, one pool — produces by ingesting the same devices in
//! order.

use cres::attacks::catalog::try_build;
use cres::fleet::soc::{FleetSoc, FleetSocConfig, FleetVerdict};
use cres::fleet::spec::{AttackMix, DeviceSpec, FleetConfig};
use cres::fleet::summary::DeviceSummary;
use cres::fleet::{run_fleet, FleetIncident};
use cres::platform::{PlatformPool, ScenarioRunner};

fn config(devices: u32, seed: u64) -> FleetConfig {
    let mut config = FleetConfig::new(devices, seed);
    // enough for training + injection + detection, short enough for CI
    config.device_cycles = 60_000;
    config
}

/// The reference: a plain in-order loop with one pool, no fleet runner
/// machinery at all.
fn hand_rolled_sequential(config: &FleetConfig) -> FleetVerdict {
    let mut pool = PlatformPool::new();
    let mut soc = FleetSoc::new(FleetSocConfig::default());
    for id in 0..config.devices {
        let spec = DeviceSpec::generate(config, id);
        let scenario = spec
            .scenario_spec()
            .materialise(&try_build)
            .expect("catalog attack");
        let report = ScenarioRunner::new(spec.platform_config(config.telemetry))
            .run_pooled(&mut pool, scenario);
        soc.ingest(&DeviceSummary::from_report(id, &report));
    }
    soc.finish()
}

#[test]
fn worker_count_does_not_change_the_verdict() {
    let config = config(32, 9001);
    let reference = run_fleet(&config, 1, try_build).expect("fleet runs");
    let reference_json = reference.verdict.to_json();
    // the mix should actually exercise correlation, not a quiet fleet
    assert!(reference.verdict.attacked > 0, "mix produced no attacks");
    for workers in [2, 8] {
        let report = run_fleet(&config, workers, try_build).expect("fleet runs");
        assert_eq!(
            report.verdict, reference.verdict,
            "{workers} workers: verdict struct"
        );
        assert_eq!(
            report.verdict.to_json(),
            reference_json,
            "{workers} workers: verdict JSON bytes"
        );
        assert_eq!(
            report.shards.iter().map(|s| s.devices).sum::<u32>(),
            config.devices,
            "{workers} workers: shard coverage"
        );
    }
}

#[test]
fn engine_matches_hand_rolled_sequential_loop() {
    let config = config(24, 77);
    let reference = hand_rolled_sequential(&config);
    for workers in [1, 2, 8] {
        let report = run_fleet(&config, workers, try_build).expect("fleet runs");
        assert_eq!(
            report.verdict.to_json(),
            reference.to_json(),
            "{workers} workers vs hand-rolled"
        );
    }
}

#[test]
fn campaign_mix_raises_the_same_fleet_incidents_everywhere() {
    let mut config = config(24, 4242);
    config.mix = AttackMix::campaign("network-flood");
    let reference = run_fleet(&config, 1, try_build).expect("fleet runs");
    let campaign = reference
        .verdict
        .incidents
        .iter()
        .find_map(|incident| match incident {
            FleetIncident::CoordinatedCampaign {
                signature, devices, ..
            } => Some((signature.clone(), *devices)),
            FleetIncident::LateralMovement { .. } => None,
        })
        .expect("60% exposure to one signature is a campaign");
    assert_eq!(campaign.0, "network-flood");
    assert!(campaign.1 >= 3, "campaign carriers: {}", campaign.1);
    // escalation quarantines every carrier
    assert!(reference.verdict.quarantined >= campaign.1);
    for workers in [2, 8] {
        let report = run_fleet(&config, workers, try_build).expect("fleet runs");
        assert_eq!(report.verdict.to_json(), reference.verdict.to_json());
    }
}

#[test]
fn fleet_evidence_root_is_reproducible_per_device() {
    // re-running any single device reproduces the exact summary digest
    // the fleet accumulator consumed — the audit story behind the root
    let config = config(16, 31337);
    let fleet = run_fleet(&config, 2, try_build).expect("fleet runs");
    assert_eq!(fleet.verdict.evidence_leaves, 16);
    let root = fleet.verdict.evidence_root.expect("non-empty fleet");
    // rebuild the accumulator from independently re-run devices
    let mut acc = cres::crypto::merkle::MerkleAccumulator::new();
    let mut pool = PlatformPool::new();
    for id in 0..config.devices {
        let spec = DeviceSpec::generate(&config, id);
        let scenario = spec
            .scenario_spec()
            .materialise(&try_build)
            .expect("catalog attack");
        let report = ScenarioRunner::new(spec.platform_config(config.telemetry))
            .run_pooled(&mut pool, scenario);
        acc.append_digest(&DeviceSummary::from_report(id, &report).digest);
    }
    assert_eq!(acc.root(), Some(root));
}
