//! Tier-1 replay of pinned regression fixtures: every `.toml` under
//! `tests/fixtures/regressions/` is a detection miss the fuzz gauntlet
//! found and the shrinker minimized. Each must still reproduce its
//! recorded classification and missed set, byte-for-byte with the
//! `[expect]` block.
//!
//! If one of these starts *failing to miss*, the platform learned to
//! detect something it could not before — delete or re-pin the fixture
//! deliberately (run `e13_fuzz` with `CRES_PIN_DIR`) and record why.

use cres::scenario::{parse, serialize, verify_pinned};
use std::path::PathBuf;

fn regression_fixtures() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/regressions");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn pinned_misses_still_reproduce() {
    let fixtures = regression_fixtures();
    assert!(
        !fixtures.is_empty(),
        "no pinned fixtures — the fuzz gauntlet should have pinned at least one miss"
    );
    for path in fixtures {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let doc = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        verify_pinned(&doc).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

#[test]
fn pinned_fixtures_are_canonical() {
    for path in regression_fixtures() {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let doc = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            serialize(&doc),
            text,
            "{} is not canonical DSL — re-pin it with e13_fuzz",
            path.display()
        );
    }
}
