//! The paper's headline claim, pinned as a test: the evidence data stream
//! survives a compromise that destroys every attacker-reachable log.

use cres::attacks::{CodeInjectionAttack, ExfilAttack, LogWipeAttack, MemoryProbeAttack};
use cres::forensics::BreachReport;
use cres::platform::{PlatformConfig, PlatformProfile, Scenario, ScenarioRunner};
use cres::sim::{SimDuration, SimTime};
use cres::soc::addr::MasterId;
use cres::soc::soc::layout;
use cres::soc::task::{BlockId, TaskId};

fn staged_intrusion() -> Scenario {
    Scenario::quiet(SimDuration::cycles(900_000))
        .attack(
            SimTime::at_cycle(200_000),
            SimDuration::cycles(5_000),
            Box::new(MemoryProbeAttack::new(
                MasterId::CPU1,
                vec![layout::SSM_PRIVATE.0, layout::TEE_SECURE.0],
            )),
        )
        .attack(
            SimTime::at_cycle(350_000),
            SimDuration::cycles(8_000),
            Box::new(CodeInjectionAttack::new(TaskId(1), BlockId(0), 2)),
        )
        .attack(
            SimTime::at_cycle(500_000),
            SimDuration::cycles(5_000),
            Box::new(ExfilAttack::new(8_192, 3)),
        )
        .attack(
            SimTime::at_cycle(650_000),
            SimDuration::cycles(1_000),
            Box::new(LogWipeAttack::new(MasterId::CPU0)),
        )
}

#[test]
fn cres_evidence_survives_the_log_wipe() {
    let report = ScenarioRunner::new(PlatformConfig::new(PlatformProfile::CyberResilient, 99))
        .run(staged_intrusion());
    // every stage of the intrusion was classified
    for a in &report.attacks {
        assert!(a.detected(), "{} missed", a.name);
    }
    // the chain survived the wipe, intact and substantial
    assert!(report.evidence_chain_ok);
    assert!(
        report.evidence_len > 20,
        "only {} records",
        report.evidence_len
    );
    // most ground-truth attack instants are reconstructable
    assert!(
        report.evidence_coverage > 0.7,
        "coverage {}",
        report.evidence_coverage
    );
}

#[test]
fn baseline_trail_dies_with_the_wipe() {
    let report = ScenarioRunner::new(PlatformConfig::new(PlatformProfile::PassiveTrust, 99))
        .run(staged_intrusion());
    // nothing was detected, nothing was recorded, and the console residue
    // post-wipe is at most a handful of late lines
    assert_eq!(report.total_incidents, 0);
    assert_eq!(report.evidence_len, 0);
    assert_eq!(report.evidence_coverage, 0.0);
    assert!(
        report.console_lines < 5,
        "{} console lines survived",
        report.console_lines
    );
}

#[test]
fn shared_ssm_evidence_is_wipeable_hence_the_isolation_requirement() {
    use cres::platform::Platform;
    use cres::ssm::SsmDeployment;

    let mut isolated = Platform::new(PlatformConfig::new(PlatformProfile::CyberResilient, 7));
    assert_eq!(
        isolated.ssm.config().deployment,
        SsmDeployment::IsolatedCore
    );
    assert!(isolated.ssm.attack_surface().is_none());

    let mut shared = Platform::new(PlatformConfig::new(PlatformProfile::TeeShared, 7));
    assert_eq!(shared.ssm.config().deployment, SsmDeployment::SharedWithGpp);
    let surface = shared
        .ssm
        .attack_surface()
        .expect("shared SSM is reachable");
    surface.records_mut_for_attack().clear();
}

#[test]
fn forensic_report_from_scenario_chain_is_self_consistent() {
    use cres::platform::Platform;
    // run the intrusion "by hand" on a live platform so the evidence key is
    // available for verification
    let mut p = Platform::new(PlatformConfig::new(PlatformProfile::CyberResilient, 31));
    ScenarioRunner::install_default_workload(&mut p);
    p.train_syscall_monitor(30);
    let probe = p.add_attack(Box::new(MemoryProbeAttack::new(
        MasterId::CPU1,
        vec![layout::SSM_PRIVATE.0],
    )));
    let mut now = SimTime::at_cycle(1_000);
    for id in p.soc.task_ids() {
        p.step_task_and_observe(id, now);
    }
    p.attack_step(probe, now);
    now += SimDuration::cycles(5_000);
    let events = p.sample_monitors(now);
    p.ingest_and_respond(now, events);

    let key = p.evidence_key().to_vec();
    let report = BreachReport::generate(&key, p.ssm.evidence().records());
    assert!(report.chain_intact());
    assert_eq!(report.total_records, p.ssm.evidence().len());
    // every incident the SSM classified appears in the report
    assert_eq!(report.incidents.len(), p.ssm.incidents().len());
}
